//! Intra-snapshot parallelism: chunk the CSR candidate/item axis so **one**
//! method saturates all cores on one huge day.
//!
//! Every parallelism axis before this module was *across* (day, method)
//! tasks — `evaluation::ParallelRunner` fans out whole method runs — so a
//! single million-item snapshot still ran one method on one core, which is
//! exactly the per-method wall time the paper's Figure 12 measures. This
//! module cuts the flat candidate axis of a [`FusionProblem`] into
//! contiguous **item ranges** (respecting `item_cand_offsets` boundaries,
//! sized by candidate count so ragged rows balance), runs the per-round
//! walks — vote accumulation, per-item adjustment/softmax, argmax
//! selection, per-source trust partial sums, copy-pair LLR rescoring — on
//! rayon with per-chunk scratch, and merges deterministically.
//!
//! # Determinism (bit-identity contract)
//!
//! The chunked path produces **bit-identical** results to the sequential
//! path for *any* chunk plan and *any* thread count, because no
//! floating-point sum is ever re-associated across a chunk boundary:
//!
//! * **Per-item phases** (vote accumulation, similarity adjustment,
//!   softmax, argmax, investment growth) only read shared state and write
//!   their own item's plane row — each item's arithmetic is the exact
//!   scalar sequence of the sequential loop, regardless of which chunk ran
//!   it.
//! * **Per-source reductions** (trust updates, cosine similarity,
//!   investment payback) are chunked along the *source* axis: each
//!   source's claim-order sum stays intact, and each source owns its own
//!   accumulator slot, so nothing merges across sources at all.
//! * **Global normalize/rescale** splits into two passes: the `max`/`min`
//!   reduction runs over the full slice first (exact for non-NaN input —
//!   `max`/`min` folds are associative), then the elementwise scaling is
//!   applied per chunk — correctly-rounded IEEE division, identical bits
//!   on every backend and chunk layout.
//! * **Copy-pair rescoring** is chunked along the pair axis; each pair's
//!   entry-order LLR sum is computed by the same kernel the sequential
//!   path calls.
//!
//! Chunk boundaries are fixed per run (not per round), reductions merge in
//! chunk-index order, and there are no atomics on `f64` anywhere. The
//! contract is pinned by `tests/chunk_equivalence.rs` plus the existing
//! oracle, golden Table-7, golden scenario, and cross-runner proptest
//! harnesses, which CI runs under `RAYON_NUM_THREADS` ∈ {1, 2}.
//!
//! [`FusionProblem`]: crate::FusionProblem

use crate::kernels;
use crate::problem::FusionProblem;
use crate::types::{FusionOptions, VotePlane};
use rayon::prelude::*;
use std::ops::Range;

/// Items per chunk below which splitting a snapshot is not worth the
/// scoped-thread spawn: tiny days stay sequential even when the caller
/// requested chunking.
pub const MIN_ITEMS_PER_CHUNK: usize = 256;

/// A fixed partition of `0..len` entries into contiguous, non-empty,
/// weight-balanced ranges. Built once per method run, so every round sees
/// the same boundaries (part of the determinism contract, and it keeps the
/// plan cost out of the round loop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    ranges: Vec<Range<usize>>,
}

impl ChunkPlan {
    /// A single chunk spanning all of `0..len` (the degenerate plan used
    /// when an axis is too small to split).
    // The plan genuinely holds one Range covering the whole axis — this is
    // not the `vec![0..len]` / `(0..len).collect()` mix-up the lint guards.
    #[allow(clippy::single_range_in_vec_init)]
    pub fn single(len: usize) -> Self {
        Self { ranges: vec![0..len] }
    }

    /// Balance `num_chunks` contiguous ranges over the entries of a CSR
    /// offset table (`offsets.len() - 1` entries, entry `i` weighing
    /// `offsets[i + 1] - offsets[i]`), so ragged rows spread evenly.
    pub fn balanced_by_extents(offsets: &[u32], num_chunks: usize) -> Self {
        debug_assert!(!offsets.is_empty());
        let len = offsets.len() - 1;
        let base = offsets[0] as u64;
        let total = *offsets.last().expect("non-empty offsets") as u64 - base;
        Self::cut(len, num_chunks, total, |end| offsets[end] as u64 - base)
    }

    /// Balance `num_chunks` contiguous ranges over explicitly weighted
    /// entries (e.g. sources weighted by claim count).
    pub fn balanced_by_weights(weights: &[usize], num_chunks: usize) -> Self {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        let mut prefix = Vec::with_capacity(weights.len() + 1);
        let mut cum = 0u64;
        prefix.push(0u64);
        for &w in weights {
            cum += w as u64;
            prefix.push(cum);
        }
        Self::cut(weights.len(), num_chunks, total, |end| prefix[end])
    }

    /// Core fair-share cut: close chunk `k` (1-based) at the smallest
    /// boundary whose cumulative weight reaches `k/n` of the total, while
    /// always leaving enough entries for the remaining chunks to be
    /// non-empty. `cum(end)` is the total weight of entries `0..end`.
    fn cut(len: usize, num_chunks: usize, total: u64, cum: impl Fn(usize) -> u64) -> Self {
        let n = num_chunks.clamp(1, len.max(1));
        let mut ranges = Vec::with_capacity(n);
        let mut start = 0usize;
        for k in 1..n {
            let max_end = len - (n - k);
            let mut end = start + 1;
            while end < max_end && (cum(end) as u128) * (n as u128) < (k as u128) * (total as u128)
            {
                end += 1;
            }
            ranges.push(start..end);
            start = end;
        }
        ranges.push(start..len);
        Self { ranges }
    }

    /// Number of chunks in the plan (always ≥ 1).
    pub fn num_chunks(&self) -> usize {
        self.ranges.len()
    }

    /// The contiguous entry ranges, in axis order; together they cover
    /// `0..len` exactly.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        self.ranges.iter().cloned()
    }

    /// Total number of entries covered by the plan.
    pub fn len(&self) -> usize {
        self.ranges.last().map_or(0, |r| r.end)
    }

    /// Whether the plan covers no entries at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The per-run chunk plans of one method invocation: the item axis (vote
/// plane rows, weighted by candidate count) and the source axis (trust
/// accumulators, weighted by claim count). Built once before the round
/// loop via [`ChunkPlans::from_options`].
#[derive(Debug, Clone)]
pub struct ChunkPlans {
    /// Item-axis plan (plane rows, argmax, per-item adjustment).
    pub items: ChunkPlan,
    /// Source-axis plan (trust updates, payback, error rates).
    pub sources: ChunkPlan,
}

impl ChunkPlans {
    /// Build the plans [`FusionOptions::intra_day_chunks`] requests, or
    /// `None` when the run should stay sequential (0 or 1 chunks
    /// requested, or the snapshot is too small for splitting to pay).
    pub fn from_options(options: &FusionOptions, problem: &FusionProblem) -> Option<Self> {
        let requested = options.intra_day_chunks;
        if requested <= 1 {
            return None;
        }
        let num_items = problem.num_items();
        if num_items < 2 {
            return None;
        }
        let item_chunks = requested.min(num_items);
        let num_sources = problem.num_sources();
        let source_chunks = requested.min(num_sources.max(1));
        let mut claim_weights = Vec::with_capacity(num_sources);
        for s in 0..num_sources {
            claim_weights.push(problem.claims(s).len());
        }
        Some(Self {
            items: ChunkPlan::balanced_by_extents(problem.item_cand_offsets(), item_chunks),
            sources: ChunkPlan::balanced_by_weights(&claim_weights, source_chunks),
        })
    }

    /// Borrow the two per-axis plans out of the optional bundle
    /// [`from_options`](Self::from_options) returns — `(items, sources)`,
    /// both `None` on the sequential path.
    pub fn split(plans: &Option<Self>) -> (Option<&ChunkPlan>, Option<&ChunkPlan>) {
        match plans {
            Some(p) => (Some(&p.items), Some(&p.sources)),
            None => (None, None),
        }
    }
}

/// Run one owned task per chunk on rayon, returning the results in
/// chunk-index order (the stub and real rayon both restore input order).
/// Tasks own disjoint `&mut` sub-slices carved by `split_at_mut`, so the
/// borrow checker — not synchronization — guarantees non-interference.
pub fn run_chunks<T, R, F>(tasks: Vec<T>, body: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync + Send,
{
    tasks.into_par_iter().map(body).collect()
}

/// A disjoint mutable view of one chunk of a [`VotePlane`]: the item range,
/// the shared offset table, and the chunk's own slice of the flat value
/// plane (`split_at_mut`, no aliasing).
#[derive(Debug)]
pub struct PlaneChunkMut<'a> {
    items: Range<usize>,
    offsets: &'a [u32],
    base: usize,
    values: &'a mut [f64],
}

impl<'a> PlaneChunkMut<'a> {
    /// The global item indices this chunk owns.
    pub fn items(&self) -> Range<usize> {
        self.items.clone()
    }

    /// The global candidate range this chunk's values cover.
    pub fn cand_range(&self) -> Range<usize> {
        self.base..self.base + self.values.len()
    }

    /// Mutable plane row of global item `i` (must lie in
    /// [`items`](Self::items)).
    #[inline]
    pub fn item_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(self.items.contains(&i));
        let lo = self.offsets[i] as usize - self.base;
        let hi = self.offsets[i + 1] as usize - self.base;
        &mut self.values[lo..hi]
    }

    /// The chunk's flat values (its slice of the global candidate axis).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        self.values
    }
}

/// Carve `values` into the disjoint per-chunk views of `plan` (shared
/// `offsets` table, `split_at_mut` over the flat plane). `pub(crate)` so
/// [`VotePlane::chunks_mut`] can hand out views without exposing its
/// private fields.
pub(crate) fn plane_chunks<'a>(
    offsets: &'a [u32],
    values: &'a mut [f64],
    plan: &ChunkPlan,
) -> Vec<PlaneChunkMut<'a>> {
    debug_assert_eq!(plan.len(), offsets.len() - 1);
    let mut chunks = Vec::with_capacity(plan.num_chunks());
    let mut rest = values;
    let mut consumed = offsets[0] as usize;
    for items in plan.ranges() {
        let hi = offsets[items.end] as usize;
        let (head, tail) = rest.split_at_mut(hi - consumed);
        chunks.push(PlaneChunkMut {
            items,
            offsets,
            base: consumed,
            values: head,
        });
        rest = tail;
        consumed = hi;
    }
    chunks
}

/// Run `body(item, row, scratch)` for every item, either sequentially with
/// the caller's warm scratch (plan `None` — the allocation-free path every
/// existing golden pins) or chunked on rayon with one fresh scratch per
/// chunk. The body must fully determine the row from shared state, which
/// is what makes the two paths bit-identical.
pub fn for_each_item<S, M, F>(
    plane: &mut VotePlane,
    plan: Option<&ChunkPlan>,
    seq_scratch: &mut S,
    make_scratch: M,
    body: F,
) where
    S: Send,
    M: Fn() -> S + Sync + Send,
    F: Fn(usize, &mut [f64], &mut S) + Sync + Send,
{
    match plan {
        None => {
            for i in 0..plane.num_items() {
                body(i, plane.item_mut(i), seq_scratch);
            }
        }
        Some(plan) => {
            let chunks = plane.chunks_mut(plan);
            run_chunks(chunks, |mut chunk| {
                let mut scratch = make_scratch();
                for i in chunk.items() {
                    body(i, chunk.item_mut(i), &mut scratch);
                }
            });
        }
    }
}

/// Run `body(index, &mut out[index])` for every slot of `out`, sequentially
/// (plan `None`) or with `out` split into the disjoint per-chunk slices of
/// `plan` (which must partition `0..out.len()`). Used for the per-source
/// and per-item reduction targets: each slot is owned by exactly one
/// chunk, so per-slot arithmetic order never changes.
pub fn for_each_slot<F>(out: &mut [f64], plan: Option<&ChunkPlan>, body: F)
where
    F: Fn(usize, &mut f64) + Sync + Send,
{
    match plan {
        None => {
            for (i, slot) in out.iter_mut().enumerate() {
                body(i, slot);
            }
        }
        Some(plan) => {
            debug_assert_eq!(plan.len(), out.len());
            let mut tasks = Vec::with_capacity(plan.num_chunks());
            let mut rest = out;
            for r in plan.ranges() {
                let (head, tail) = rest.split_at_mut(r.len());
                tasks.push((r.start, head));
                rest = tail;
            }
            run_chunks(tasks, |(start, slice)| {
                for (off, slot) in slice.iter_mut().enumerate() {
                    body(start + off, slot);
                }
            });
        }
    }
}

/// Two-pass chunked [`normalize_by_max`](crate::types::normalize_by_max):
/// the exact `max` reduction runs over the full plane first, then each
/// chunk applies the correctly-rounded elementwise division. Bit-identical
/// to the sequential kernel for any chunk layout.
pub fn normalize_plane_by_max(plane: &mut VotePlane, plan: Option<&ChunkPlan>) {
    match plan {
        None => kernels::normalize_by_max(plane.values_mut()),
        Some(plan) => {
            let max = kernels::max_value(plane.values());
            let chunks = plane.chunks_mut(plan);
            run_chunks(chunks, |mut chunk| {
                kernels::apply_normalize_by_max(chunk.values_mut(), max);
            });
        }
    }
}

/// Two-pass chunked [`rescale_to_unit`](crate::types::rescale_to_unit):
/// exact global `min`/`max` folds, then per-chunk elementwise affine
/// scaling. Bit-identical to the sequential kernel for any chunk layout.
pub fn rescale_plane_to_unit(plane: &mut VotePlane, plan: Option<&ChunkPlan>) {
    match plan {
        None => kernels::rescale_to_unit(plane.values_mut()),
        Some(plan) => {
            let min = kernels::min_value(plane.values());
            let max = kernels::max_value(plane.values());
            let chunks = plane.chunks_mut(plan);
            run_chunks(chunks, |mut chunk| {
                kernels::apply_rescale_to_unit(chunk.values_mut(), min, max);
            });
        }
    }
}

/// Chunked argmax selection: `selection` is split into the disjoint
/// per-chunk item ranges and every chunk runs the same scalar kernel the
/// sequential [`VotePlane::argmax_into`] dispatches to, over its sub-table
/// of offsets. Embarrassingly parallel per item.
pub fn argmax_plane_into(plane: &VotePlane, plan: Option<&ChunkPlan>, selection: &mut Vec<usize>) {
    match plan {
        None => plane.argmax_into(selection),
        Some(plan) => {
            let num_items = plane.num_items();
            debug_assert_eq!(plan.len(), num_items);
            selection.clear();
            selection.resize(num_items, 0);
            let offsets = plane.offsets();
            let values = plane.values();
            let mut tasks = Vec::with_capacity(plan.num_chunks());
            let mut rest = selection.as_mut_slice();
            for r in plan.ranges() {
                let (head, tail) = rest.split_at_mut(r.len());
                tasks.push((r.start, head));
                rest = tail;
            }
            run_chunks(tasks, |(start, out)| {
                kernels::argmax_into_slice(&offsets[start..start + out.len() + 1], values, out);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_plan_spans_everything() {
        let plan = ChunkPlan::single(7);
        assert_eq!(plan.num_chunks(), 1);
        assert_eq!(plan.ranges().collect::<Vec<_>>(), vec![0..7]);
        assert_eq!(plan.len(), 7);
        assert!(!plan.is_empty());
    }

    #[test]
    fn balanced_extents_split_by_weight() {
        // Items with candidate counts 1, 1, 1, 9 (offsets CSR): the heavy
        // tail item must get its own chunk instead of item-count halves.
        let offsets = [0u32, 1, 2, 3, 12];
        let plan = ChunkPlan::balanced_by_extents(&offsets, 2);
        assert_eq!(plan.ranges().collect::<Vec<_>>(), vec![0..3, 3..4]);
    }

    #[test]
    fn plans_are_contiguous_non_empty_and_cover() {
        for (weights, chunks) in [
            (vec![0usize, 0, 0, 0], 2usize),
            (vec![5, 1, 1, 1, 1, 1], 3),
            (vec![1], 4),
            (vec![10, 10], 2),
            (vec![3, 3, 3, 3, 3, 3, 3], 16),
        ] {
            let plan = ChunkPlan::balanced_by_weights(&weights, chunks);
            let ranges: Vec<_> = plan.ranges().collect();
            assert!(plan.num_chunks() <= chunks.max(1));
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, weights.len());
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
            }
            for r in &ranges {
                assert!(!r.is_empty(), "non-empty ranges in {ranges:?}");
            }
        }
    }

    #[test]
    fn chunk_count_clamps_to_entries() {
        let plan = ChunkPlan::balanced_by_weights(&[1, 1], 16);
        assert_eq!(plan.num_chunks(), 2);
    }

    #[test]
    fn run_chunks_preserves_order() {
        let tasks: Vec<usize> = (0..23).collect();
        let out = run_chunks(tasks, |i| i * 3);
        assert_eq!(out, (0..23).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn plane_chunks_are_disjoint_views() {
        let mut plane = VotePlane::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0],
        ]);
        let plan = ChunkPlan::balanced_by_extents(plane.offsets(), 2);
        let mut chunks = plane.chunks_mut(&plan);
        assert_eq!(chunks.len(), 2);
        let all_items: Vec<usize> = chunks.iter().flat_map(|c| c.items()).collect();
        assert_eq!(all_items, vec![0, 1, 2, 3]);
        for chunk in &mut chunks {
            for i in chunk.items() {
                for v in chunk.item_mut(i).iter_mut() {
                    *v += 10.0;
                }
            }
        }
        assert_eq!(plane.values(), &[11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0]);
    }

    #[test]
    fn for_each_item_matches_sequential() {
        let rows = vec![vec![0.0; 3], vec![0.0; 1], vec![0.0; 2], vec![0.0; 5]];
        let mut seq_plane = VotePlane::from_rows(&rows);
        let mut par_plane = VotePlane::from_rows(&rows);
        let body = |i: usize, out: &mut [f64], scratch: &mut Vec<f64>| {
            scratch.clear();
            scratch.extend((0..out.len()).map(|c| (i * 10 + c) as f64));
            for (slot, v) in out.iter_mut().zip(scratch.iter()) {
                *slot = v * 0.5;
            }
        };
        let mut seq_scratch = Vec::new();
        for_each_item(&mut seq_plane, None, &mut seq_scratch, Vec::new, body);
        let plan = ChunkPlan::balanced_by_extents(par_plane.offsets(), 3);
        let mut unused = Vec::new();
        for_each_item(&mut par_plane, Some(&plan), &mut unused, Vec::new, body);
        assert_eq!(seq_plane.values(), par_plane.values());
    }

    #[test]
    fn for_each_slot_covers_every_index() {
        let mut seq = vec![0.0f64; 11];
        let mut par = vec![0.0f64; 11];
        let body = |i: usize, slot: &mut f64| *slot = (i * i) as f64;
        for_each_slot(&mut seq, None, body);
        let plan = ChunkPlan::balanced_by_weights(&[1; 11], 4);
        for_each_slot(&mut par, Some(&plan), body);
        assert_eq!(seq, par);
    }

    #[test]
    fn chunked_normalize_and_rescale_match_sequential() {
        let rows = vec![vec![2.0, 8.0], vec![4.0], vec![1.0, 16.0, 0.5]];
        for chunks in [1usize, 2, 3] {
            let mut seq = VotePlane::from_rows(&rows);
            let mut par = VotePlane::from_rows(&rows);
            let plan = ChunkPlan::balanced_by_extents(par.offsets(), chunks);
            normalize_plane_by_max(&mut seq, None);
            normalize_plane_by_max(&mut par, Some(&plan));
            assert_eq!(seq.values(), par.values());

            let mut seq = VotePlane::from_rows(&rows);
            let mut par = VotePlane::from_rows(&rows);
            rescale_plane_to_unit(&mut seq, None);
            rescale_plane_to_unit(&mut par, Some(&plan));
            assert_eq!(seq.values(), par.values());
        }
    }

    #[test]
    fn chunked_argmax_matches_sequential() {
        let rows = vec![
            vec![0.1, 0.9, 0.5],
            vec![1.0],
            vec![],
            vec![0.3, 0.3, 0.7, 0.2],
        ];
        let plane = VotePlane::from_rows(&rows);
        let mut seq = Vec::new();
        let mut par = Vec::new();
        argmax_plane_into(&plane, None, &mut seq);
        let plan = ChunkPlan::balanced_by_extents(plane.offsets(), 3);
        argmax_plane_into(&plane, Some(&plan), &mut par);
        assert_eq!(seq, par);
        assert_eq!(seq, vec![1, 0, 0, 2]);
    }
}
