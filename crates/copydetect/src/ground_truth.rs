//! Scoring a [`crate::CopyReport`] against generator ground truth.
//!
//! The scenario regression suites plant known copy structures (star groups,
//! copier-ring chains) and must report how well detection recovers them.
//! [`compare_edges`] scores the detector's thresholded pairs against the true
//! edge set — all unordered pairs of sources that share a planted copy
//! provenance — yielding hit and false-positive rates that go straight into
//! the golden-metrics tables.

use crate::CopyReport;
use datamodel::SourceId;
use serde::Serialize;
use std::collections::BTreeSet;

/// Detected-edge vs. ground-truth-edge comparison.
#[derive(Debug, Clone, Serialize)]
pub struct EdgeComparison {
    /// Number of ground-truth edges.
    pub true_edges: usize,
    /// Number of detected edges.
    pub detected_edges: usize,
    /// Detected edges that are ground-truth edges.
    pub hits: usize,
    /// Detected edges that are *not* ground-truth edges.
    pub false_positives: usize,
}

impl EdgeComparison {
    /// Fraction of ground-truth edges detected (recall). 1.0 when there are
    /// no ground-truth edges.
    pub fn hit_rate(&self) -> f64 {
        if self.true_edges == 0 {
            1.0
        } else {
            self.hits as f64 / self.true_edges as f64
        }
    }

    /// Fraction of detected edges that are spurious. 0.0 when nothing was
    /// detected.
    pub fn false_positive_rate(&self) -> f64 {
        if self.detected_edges == 0 {
            0.0
        } else {
            self.false_positives as f64 / self.detected_edges as f64
        }
    }

    /// Fraction of detected edges that are real (precision). 1.0 when
    /// nothing was detected (no spurious claims were made).
    pub fn precision(&self) -> f64 {
        1.0 - self.false_positive_rate()
    }
}

/// Score the report's thresholded pairs against `true_edges` (unordered;
/// orientation is normalized before comparison).
pub fn compare_edges(report: &CopyReport, true_edges: &[(SourceId, SourceId)]) -> EdgeComparison {
    let truth: BTreeSet<(SourceId, SourceId)> = true_edges
        .iter()
        .map(|&(a, b)| if a <= b { (a, b) } else { (b, a) })
        .collect();
    let detected: BTreeSet<(SourceId, SourceId)> = report
        .detected_pairs()
        .into_iter()
        .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
        .collect();
    let hits = detected.intersection(&truth).count();
    EdgeComparison {
        true_edges: truth.len(),
        detected_edges: detected.len(),
        hits,
        false_positives: detected.len() - hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::known_copying;
    use datamodel::DomainSchema;

    fn schema_with_group() -> DomainSchema {
        let mut schema = DomainSchema::new("test");
        for i in 0..4 {
            schema.add_source(format!("S{i}"), false);
        }
        schema.set_copy_of(SourceId(1), SourceId(0));
        schema.set_copy_of(SourceId(2), SourceId(0));
        schema
    }

    #[test]
    fn oracle_report_scores_perfectly_against_its_own_truth() {
        let schema = schema_with_group();
        let report = known_copying(&schema);
        let truth = vec![
            (SourceId(0), SourceId(1)),
            (SourceId(0), SourceId(2)),
            (SourceId(1), SourceId(2)),
        ];
        let cmp = compare_edges(&report, &truth);
        assert_eq!(cmp.hits, cmp.true_edges);
        assert_eq!(cmp.false_positives, 0);
        assert_eq!(cmp.hit_rate(), 1.0);
        assert_eq!(cmp.false_positive_rate(), 0.0);
        assert_eq!(cmp.precision(), 1.0);
    }

    #[test]
    fn missing_and_spurious_edges_are_counted() {
        let schema = schema_with_group();
        let report = known_copying(&schema);
        // Pretend the truth also contains an edge the oracle misses, and
        // drop one edge it reports (making that report edge spurious).
        let truth = vec![
            (SourceId(0), SourceId(1)),
            (SourceId(1), SourceId(2)),
            (SourceId(2), SourceId(3)),
        ];
        let cmp = compare_edges(&report, &truth);
        assert_eq!(cmp.true_edges, 3);
        assert_eq!(cmp.hits, 2);
        assert_eq!(cmp.false_positives, 1);
        assert!((cmp.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn edge_orientation_is_normalized() {
        let schema = schema_with_group();
        let report = known_copying(&schema);
        let reversed = vec![(SourceId(1), SourceId(0))];
        let cmp = compare_edges(&report, &reversed);
        assert_eq!(cmp.hits, 1);
    }

    #[test]
    fn empty_truth_and_empty_detection_degenerate_sanely() {
        let report = CopyReport::default();
        let cmp = compare_edges(&report, &[]);
        assert_eq!(cmp.hit_rate(), 1.0);
        assert_eq!(cmp.false_positive_rate(), 0.0);
    }
}
