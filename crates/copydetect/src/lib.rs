//! Copy (source-dependence) detection between Deep-Web sources.
//!
//! The paper's ACCUCOPY method and its Section-3.4 analysis rely on knowing —
//! or detecting — which sources copy from which. This crate provides:
//!
//! * [`CopyDetector`] — a Bayesian pairwise detector in the spirit of Dong et
//!   al. (PVLDB 2009/2010): sharing *false* values is strong evidence of
//!   copying, sharing true values is weak evidence, and disagreeing is
//!   evidence of independence;
//! * [`CopyReport`] — pairwise copy probabilities, thresholded pairs, and
//!   connected-component copy groups;
//! * [`known_copying`] — the oracle path used by the paper when it feeds the
//!   *claimed/observed* dependencies (Table 5) into fusion instead of the
//!   detected ones;
//! * [`compare_edges`] — scoring a report's detected edges against a
//!   generator-planted ground-truth edge set (hit / false-positive rates for
//!   the scenario regression suites).

pub mod detector;
pub mod ground_truth;

pub use detector::{known_copying, CopyDetector, CopyDetectorConfig, CopyReport};
pub use ground_truth::{compare_edges, EdgeComparison};
