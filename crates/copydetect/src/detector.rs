//! Bayesian pairwise copy detection.
//!
//! For every pair of sources the detector walks over their shared data items
//! and classifies each into one of three cases relative to a *reference*
//! assignment of true values (the gold standard when available, otherwise the
//! dominant values):
//!
//! * both provide the same **false** value — strong evidence of copying,
//! * both provide the same **true** value — weak evidence of copying,
//! * they provide **different** values — evidence of independence.
//!
//! The log-likelihood ratio between the "copying" and "independent" models is
//! accumulated over the shared items and squashed into a posterior copy
//! probability (Dong et al., PVLDB 2009, simplified to the single-truth,
//! single-snapshot setting used in the paper's experiments).

use datamodel::{DomainSchema, GoldStandard, ItemId, Snapshot, SourceId, Value};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// Tunable parameters of the detector.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CopyDetectorConfig {
    /// Prior probability that an arbitrary source pair has a copy relation.
    pub prior: f64,
    /// Probability that a copier copies (rather than independently provides)
    /// any particular shared item, given that the pair has a copy relation.
    pub copy_rate: f64,
    /// Assumed number of distinct false values per item (the `n` of the
    /// ACCU family's Bayesian model).
    pub n_false_values: usize,
    /// Default error rate assumed for a source when the reference covers too
    /// few of its claims to estimate one.
    pub default_error_rate: f64,
    /// Minimum number of shared items required before a pair is scored.
    pub min_shared_items: usize,
    /// Posterior threshold above which a pair is reported as copying.
    pub threshold: f64,
}

impl Default for CopyDetectorConfig {
    fn default() -> Self {
        Self {
            prior: 0.1,
            copy_rate: 0.8,
            n_false_values: 10,
            default_error_rate: 0.2,
            min_shared_items: 10,
            threshold: 0.5,
        }
    }
}

/// Pairwise copy probabilities and derived groupings.
#[derive(Debug, Clone, Default, Serialize)]
pub struct CopyReport {
    /// Posterior copy probability per unordered source pair (keys are stored
    /// with the smaller id first).
    pairs: BTreeMap<(SourceId, SourceId), f64>,
    threshold: f64,
}

impl CopyReport {
    /// Posterior copy probability of the pair `(a, b)` (0.0 when unscored).
    pub fn probability(&self, a: SourceId, b: SourceId) -> f64 {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pairs.get(&key).copied().unwrap_or(0.0)
    }

    /// All scored pairs and their probabilities.
    pub fn pairs(&self) -> impl Iterator<Item = (&(SourceId, SourceId), &f64)> {
        self.pairs.iter()
    }

    /// Pairs whose posterior exceeds the detection threshold.
    pub fn detected_pairs(&self) -> Vec<(SourceId, SourceId)> {
        self.pairs
            .iter()
            .filter(|(_, p)| **p >= self.threshold)
            .map(|(k, _)| *k)
            .collect()
    }

    /// Connected components of the detected-pair graph: the detected copy
    /// groups (size ≥ 2).
    pub fn groups(&self) -> Vec<Vec<SourceId>> {
        let pairs = self.detected_pairs();
        let mut adjacency: BTreeMap<SourceId, BTreeSet<SourceId>> = BTreeMap::new();
        for (a, b) in &pairs {
            adjacency.entry(*a).or_default().insert(*b);
            adjacency.entry(*b).or_default().insert(*a);
        }
        let mut visited: BTreeSet<SourceId> = BTreeSet::new();
        let mut groups = Vec::new();
        for &start in adjacency.keys() {
            if visited.contains(&start) {
                continue;
            }
            let mut component = Vec::new();
            let mut stack = vec![start];
            while let Some(node) = stack.pop() {
                if !visited.insert(node) {
                    continue;
                }
                component.push(node);
                if let Some(neighbours) = adjacency.get(&node) {
                    stack.extend(neighbours.iter().copied());
                }
            }
            component.sort_unstable();
            if component.len() >= 2 {
                groups.push(component);
            }
        }
        groups
    }

    /// Record a pair probability (used by the detector and by the oracle
    /// constructor).
    fn insert(&mut self, a: SourceId, b: SourceId, p: f64) {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pairs.insert(key, p);
    }
}

/// The Bayesian pairwise detector.
#[derive(Debug, Clone, Default)]
pub struct CopyDetector {
    config: CopyDetectorConfig,
}

impl CopyDetector {
    /// Detector with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Detector with explicit parameters.
    pub fn with_config(config: CopyDetectorConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> CopyDetectorConfig {
        self.config
    }

    /// Score every source pair of `snapshot` against the `reference` truth
    /// assignment (typically the current fusion output or the dominant
    /// values; the gold standard can be used for oracle experiments).
    pub fn detect(&self, snapshot: &Snapshot, reference: &GoldStandard) -> CopyReport {
        let sources: Vec<SourceId> = snapshot.active_sources().into_iter().collect();
        let source_index: std::collections::HashMap<SourceId, usize> = sources
            .iter()
            .enumerate()
            .map(|(i, s)| (*s, i))
            .collect();

        // Index every source's claims into ONE flat CSR array instead of S
        // heap vectors (mirroring the fusion problem's claim layout): tag
        // each observation with its dense source index in a single pass over
        // the observation table, prefix-sum the per-source counts, then
        // scatter — O(claims), and because the tagged list is in increasing
        // item order, each per-source extent stays item-sorted so pair
        // scoring can merge-join two contiguous slices instead of
        // re-scanning the snapshot per source.
        let mut tagged: Vec<(usize, (ItemId, &Value))> = Vec::new();
        let mut offsets = vec![0u32; sources.len() + 1];
        for (item, obs) in snapshot.items() {
            for o in obs {
                if let Some(&s) = source_index.get(&o.source) {
                    offsets[s + 1] += 1;
                    tagged.push((s, (*item, &o.value)));
                }
            }
        }
        for s in 0..sources.len() {
            offsets[s + 1] += offsets[s];
        }
        let mut cursors: Vec<u32> = offsets[..sources.len()].to_vec();
        // Any real entry works as scatter filler; an empty table has nothing
        // to scatter.
        let mut claims: Vec<(ItemId, &Value)> = match tagged.first() {
            Some(&(_, filler)) => vec![filler; tagged.len()],
            None => Vec::new(),
        };
        for &(s, kv) in &tagged {
            claims[cursors[s] as usize] = kv;
            cursors[s] += 1;
        }
        let claims_of = |s: usize| &claims[offsets[s] as usize..offsets[s + 1] as usize];

        let error_rates: Vec<f64> = (0..sources.len())
            .map(|s| self.error_rate(snapshot, reference, claims_of(s)))
            .collect();

        let mut report = CopyReport {
            threshold: self.config.threshold,
            ..Default::default()
        };
        for i in 0..sources.len() {
            for j in (i + 1)..sources.len() {
                let p = self.pair_probability(
                    snapshot,
                    reference,
                    claims_of(i),
                    claims_of(j),
                    error_rates[i],
                    error_rates[j],
                );
                if let Some(p) = p {
                    report.insert(sources[i], sources[j], p);
                }
            }
        }
        report
    }

    /// Estimate a source's error rate against the reference (falls back to
    /// the configured default when coverage is too small).
    fn error_rate(
        &self,
        snapshot: &Snapshot,
        reference: &GoldStandard,
        claims: &[(ItemId, &Value)],
    ) -> f64 {
        let mut judged = 0usize;
        let mut wrong = 0usize;
        for (item, value) in claims {
            if let Some(truth) = reference.get(*item) {
                let tol = snapshot.tolerance().tolerance(item.attr);
                judged += 1;
                if !truth.matches(value, tol) && !value.subsumes(truth) {
                    wrong += 1;
                }
            }
        }
        if judged < self.config.min_shared_items {
            self.config.default_error_rate
        } else {
            (wrong as f64 / judged as f64).clamp(0.01, 0.99)
        }
    }

    /// Posterior copy probability of one pair, or `None` when the pair shares
    /// too few items. Both claim lists are item-sorted; shared items are
    /// found by a linear merge join.
    #[allow(clippy::too_many_arguments)]
    fn pair_probability(
        &self,
        snapshot: &Snapshot,
        reference: &GoldStandard,
        claims_a: &[(ItemId, &Value)],
        claims_b: &[(ItemId, &Value)],
        error_a: f64,
        error_b: f64,
    ) -> Option<f64> {
        let cfg = self.config;
        let n = cfg.n_false_values.max(1) as f64;
        let c = cfg.copy_rate.clamp(1e-6, 1.0 - 1e-6);

        let mut shared = 0usize;
        let mut llr = 0.0f64;
        let mut ib = 0usize;
        for &(item, va) in claims_a {
            while ib < claims_b.len() && claims_b[ib].0 < item {
                ib += 1;
            }
            if ib == claims_b.len() {
                break;
            }
            let (item_b, vb) = claims_b[ib];
            if item_b != item {
                continue;
            }
            shared += 1;
            let tol = snapshot.tolerance().tolerance(item.attr);
            let same = va.matches(vb, tol);
            let truth = reference.get(item);
            // Probabilities under the independence model.
            let p_same_true_indep = (1.0 - error_a) * (1.0 - error_b);
            let p_same_false_indep = error_a * error_b / n;
            let p_diff_indep =
                (1.0 - p_same_true_indep - p_same_false_indep).clamp(1e-9, 1.0);
            // Under the copying model a fraction `c` of the shared items is
            // copied verbatim (hence identical), the rest behaves
            // independently. Sharing the *true* value (or a value whose truth
            // is unknown) is treated as neutral evidence — accurate
            // independent sources agree on most items, so counting agreement
            // would flag every pair of good sources; sharing a *false* value
            // is the strong signal (Dong et al.), and disagreement is
            // evidence of independence.
            let (p_indep, p_copy) = if same {
                match truth {
                    Some(t) if !t.matches(va, tol) && !va.subsumes(t) => (
                        p_same_false_indep,
                        c * error_a + (1.0 - c) * p_same_false_indep,
                    ),
                    _ => continue,
                }
            } else {
                (p_diff_indep, (1.0 - c) * p_diff_indep)
            };
            llr += (p_copy.max(1e-12)).ln() - (p_indep.max(1e-12)).ln();
        }
        if shared < cfg.min_shared_items {
            return None;
        }
        let prior = cfg.prior.clamp(1e-6, 1.0 - 1e-6);
        let logit = llr + (prior / (1.0 - prior)).ln();
        Some(1.0 / (1.0 + (-logit).exp()))
    }
}

/// The oracle copy relation: pairwise probability 1.0 for every pair inside a
/// planted/claimed copy group (the paper's "ignore copiers in Table 5" and
/// "given the copying relationships" experiments).
pub fn known_copying(schema: &DomainSchema) -> CopyReport {
    let mut report = CopyReport {
        threshold: 0.5,
        ..Default::default()
    };
    for group in schema.copy_groups() {
        for i in 0..group.len() {
            for j in (i + 1)..group.len() {
                report.insert(group[i], group[j], 1.0);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{flight_config, generate, stock_config};

    #[test]
    fn oracle_report_reflects_planted_groups() {
        let domain = generate(&flight_config(9).scaled(0.05, 0.06));
        let report = known_copying(domain.reference_snapshot().schema());
        let groups = report.groups();
        assert_eq!(groups.len(), domain.copy_groups.len());
        let planted = &domain.copy_groups[0];
        assert!(report.probability(planted[0], planted[1]) > 0.99);
    }

    #[test]
    fn detector_finds_planted_copiers_in_flight() {
        let domain = generate(&flight_config(9).scaled(0.15, 0.06));
        let snapshot = domain.reference_snapshot();
        let reference = domain.reference_truth();
        let report = CopyDetector::new().detect(snapshot, reference);

        // Every planted copier pair should receive a high probability...
        let mut planted_probs = Vec::new();
        for group in &domain.copy_groups {
            for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    planted_probs.push(report.probability(group[i], group[j]));
                }
            }
        }
        let mean_planted = planted_probs.iter().sum::<f64>() / planted_probs.len() as f64;
        assert!(
            mean_planted > 0.8,
            "planted pairs should score high, got {mean_planted}"
        );

        // ...and clearly higher than the average unrelated pair.
        let all: Vec<f64> = report.pairs().map(|(_, p)| *p).collect();
        let mean_all = all.iter().sum::<f64>() / all.len() as f64;
        assert!(mean_planted > mean_all);
    }

    #[test]
    fn detected_groups_cover_low_accuracy_planted_group() {
        let domain = generate(&flight_config(9).scaled(0.15, 0.06));
        let report = CopyDetector::new().detect(
            domain.reference_snapshot(),
            domain.reference_truth(),
        );
        let detected = report.groups();
        // The low-accuracy redirect group (4 sources sharing many false
        // values) must be recovered inside some detected group.
        let redirect = &domain.copy_groups[1];
        let found = detected.iter().any(|g| redirect.iter().all(|s| g.contains(s)));
        assert!(found, "redirect group not recovered: {detected:?}");
    }

    #[test]
    fn stock_detection_runs_and_reports_bounded_probabilities() {
        let domain = generate(&stock_config(9).scaled(0.05, 0.1));
        let report = CopyDetector::new().detect(
            domain.reference_snapshot(),
            domain.reference_gold(),
        );
        for (_, p) in report.pairs() {
            assert!(*p >= 0.0 && *p <= 1.0);
        }
    }

    #[test]
    fn too_few_shared_items_is_not_scored() {
        use datamodel::{AttrId, AttrKind, DomainSchema, ObjectId, SnapshotBuilder, Value};
        use std::sync::Arc;
        let mut schema = DomainSchema::new("tiny");
        schema.add_attribute("a", AttrKind::Numeric { scale: 1.0 }, false);
        schema.add_source("x", false);
        schema.add_source("y", false);
        let mut b = SnapshotBuilder::new(0);
        b.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(1.0));
        b.add(SourceId(1), ObjectId(0), AttrId(0), Value::number(1.0));
        let snap = b.build(Arc::new(schema));
        let report = CopyDetector::new().detect(&snap, &GoldStandard::new());
        assert_eq!(report.probability(SourceId(0), SourceId(1)), 0.0);
        assert!(report.detected_pairs().is_empty());
    }
}
