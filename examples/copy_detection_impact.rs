//! How copying affects truth finding: measure the precision of dominant
//! values before and after removing planted copiers (the Section-3.4
//! experiment), and compare ACCUCOPY against copy-oblivious fusion.
//!
//! Run with: `cargo run --release --example copy_detection_impact [scale]`

use copydetect::CopyDetector;
use deepweb_truth::prelude::*;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.15);
    let domain = generate(&flight_config(77).scaled(scale, 0.1));
    let day = domain.collection.reference_day();
    let snapshot = &day.snapshot;

    // Precision of dominant values with all sources.
    let before = dominant_value_precision(snapshot, &day.gold);

    // Remove every planted copier (keep one source per group) and re-measure —
    // the paper reports the Flight precision rising from .864 to .927.
    let copiers: Vec<SourceId> = domain
        .copy_groups
        .iter()
        .flat_map(|group| group[1..].to_vec())
        .collect();
    let without_copiers = snapshot.remove_sources(&copiers);
    let after = dominant_value_precision(&without_copiers, &day.gold);
    println!("Precision of dominant values:");
    println!("    with all {} sources      : {before:.3}", snapshot.active_sources().len());
    println!("    after removing {} copiers: {after:.3}", copiers.len());

    // Detected (rather than known) copying.
    let report = CopyDetector::new().detect(snapshot, &day.gold);
    let detected_groups = report.groups();
    println!(
        "\nDetected {} copy groups (planted: {}).",
        detected_groups.len(),
        domain.copy_groups.len()
    );
    for group in &detected_groups {
        let names: Vec<&str> = group
            .iter()
            .map(|s| snapshot.schema().source(*s).name.as_str())
            .collect();
        println!("    {}", names.join(", "));
    }

    // Fusion with and without copy awareness.
    let context = EvaluationContext::new(snapshot, &day.gold);
    for name in ["Vote", "AccuFormat", "AccuCopy"] {
        let method = method_by_name(name).unwrap();
        let result = method.run(&context.problem, &FusionOptions::standard());
        let pr = precision_recall(snapshot, &day.gold, &result);
        println!("{name:<12} precision {:.3}", pr.precision);
    }
}
