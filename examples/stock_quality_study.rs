//! The Section-3 data-quality study on a generated Stock collection: data
//! redundancy, value inconsistency, dominant values, source accuracy, and
//! copying — the measurements behind Figures 2-8 and Tables 3-5 of the paper.
//!
//! Run with: `cargo run --release --example stock_quality_study [scale]`
//! where `scale` (default 0.1) shrinks the number of stock symbols so the
//! example stays fast; pass 1.0 for the full paper-scale collection.

use deepweb_truth::prelude::*;
use profiling::{
    accuracy_histogram, all_copy_group_stats, attribute_inconsistency, authority_report,
    inconsistency_reasons,
};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let config = stock_config(2026).scaled(scale, 0.25);
    println!(
        "Generating a Stock collection: {} sources, {} symbols, {} days...",
        config.num_sources(),
        config.num_objects,
        config.num_days
    );
    let domain = generate(&config);
    let day = domain.collection.reference_day();
    let snapshot = &day.snapshot;

    // Redundancy (Figures 2-3).
    let redundancy = redundancy_summary(snapshot);
    println!("\n-- Redundancy --");
    println!(
        "items: {}   mean item redundancy: {:.2}   items with redundancy > 0.5: {:.0}%",
        redundancy.num_items,
        redundancy.mean_item_redundancy,
        redundancy.items_above_half * 100.0
    );

    // Value inconsistency (Figure 4, Table 3).
    let inconsistency = snapshot_inconsistency(snapshot);
    println!("\n-- Value inconsistency --");
    println!(
        "items with conflicts: {:.0}%   mean #values: {:.2}   mean entropy: {:.2}",
        inconsistency.fraction_conflicting * 100.0,
        inconsistency.mean_num_values,
        inconsistency.mean_entropy
    );
    let mut per_attr = attribute_inconsistency(snapshot);
    per_attr.sort_by(|a, b| b.mean_num_values.partial_cmp(&a.mean_num_values).unwrap());
    println!("most inconsistent attributes (by mean number of values):");
    for attr in per_attr.iter().take(5) {
        println!(
            "    {:<22} {:.2} values, entropy {:.2}",
            attr.name, attr.mean_num_values, attr.mean_entropy
        );
    }

    // Reasons (Figure 6).
    println!("\n-- Reasons for inconsistency --");
    for share in inconsistency_reasons(snapshot, domain.reference_provenance()) {
        if share.items > 0 {
            println!("    {:<22} {:.0}%", share.reason, share.share * 100.0);
        }
    }

    // Dominant values (Figure 7).
    let dominance = dominance_profile(snapshot, &day.gold);
    println!("\n-- Dominant values --");
    println!(
        "precision of dominant values (VOTE): {:.3}   items with dominance > 0.9: {:.0}%",
        dominance.overall_precision,
        dominance.fraction_above_09 * 100.0
    );

    // Source accuracy (Figure 8(a), Table 4).
    let accuracies = source_accuracies(snapshot, &day.gold);
    let hist = accuracy_histogram(&accuracies);
    println!("\n-- Source accuracy distribution --");
    for (bin, share) in hist.iter().enumerate() {
        if *share > 0.0 {
            println!("    [{:.1}, {:.1})  {:>4.0}%", bin as f64 / 10.0, (bin + 1) as f64 / 10.0, share * 100.0);
        }
    }
    println!("authoritative sources:");
    for auth in authority_report(snapshot, &day.gold) {
        println!(
            "    {:<band$} accuracy {:.2}  coverage {:.2}",
            auth.name,
            auth.accuracy.unwrap_or(0.0),
            auth.coverage,
            band = 16
        );
    }

    // Copying (Table 5).
    println!("\n-- Planted copy groups --");
    for stats in all_copy_group_stats(snapshot, &day.gold, &domain.copy_groups) {
        println!(
            "    {} sources: schema sim {:.2}, object sim {:.2}, value sim {:.2}, avg accuracy {:.2}",
            stats.size,
            stats.schema_commonality,
            stats.object_commonality,
            stats.value_commonality,
            stats.average_accuracy
        );
    }
}
