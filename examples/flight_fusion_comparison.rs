//! The Section-4 fusion comparison on a generated Flight collection: run all
//! sixteen methods, with and without sampled trust, and show how copy
//! detection changes the picture — the experiment behind Table 7.
//!
//! Run with: `cargo run --release --example flight_fusion_comparison [scale]`

use copydetect::CopyDetector;
use deepweb_truth::prelude::*;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.15);
    let config = flight_config(2026).scaled(scale, 0.1);
    println!(
        "Generating a Flight collection: {} sources, {} flights, {} days...",
        config.num_sources(),
        config.num_objects,
        config.num_days
    );
    let domain = generate(&config);
    let day = domain.collection.reference_day();

    // Detect copying and compare against the planted groups.
    let detected = CopyDetector::new().detect(&day.snapshot, &day.gold);
    println!(
        "\nCopy detection found {} source pairs above threshold ({} planted copy groups).",
        detected.detected_pairs().len(),
        domain.copy_groups.len()
    );

    // Table-7 style comparison: all sixteen methods.
    let oracle = known_copying(day.snapshot.schema());
    let context = EvaluationContext::new(&day.snapshot, &day.gold).with_known_copying(&oracle);
    let rows = evaluate_all_methods(&context);

    println!(
        "\n{:<16} {:>12} {:>12} {:>10} {:>10}",
        "method", "prec w/o", "prec w/", "rounds", "time (ms)"
    );
    for row in &rows {
        println!(
            "{:<16} {:>12.3} {:>12.3} {:>10} {:>10.1}",
            row.method,
            row.precision_without_trust,
            row.precision_with_trust,
            row.rounds,
            row.elapsed.as_secs_f64() * 1000.0
        );
    }

    let vote = rows.iter().find(|r| r.method == "Vote").unwrap();
    let best = rows
        .iter()
        .max_by(|a, b| {
            a.precision_without_trust
                .partial_cmp(&b.precision_without_trust)
                .unwrap()
        })
        .unwrap();
    println!(
        "\nBest method without input trust: {} ({:.3}), improving over VOTE ({:.3}) by {:.1} points.",
        best.method,
        best.precision_without_trust,
        vote.precision_without_trust,
        (best.precision_without_trust - vote.precision_without_trust) * 100.0
    );
}
