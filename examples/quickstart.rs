//! Quickstart: build a tiny multi-source observation table by hand, run a few
//! fusion methods on it, and print what each one believes.
//!
//! Run with: `cargo run --example quickstart`

use deepweb_truth::prelude::*;
use std::sync::Arc;

fn main() {
    // A miniature "flight status" domain: three attributes, five websites.
    let mut schema = DomainSchema::new("mini-flight");
    let sched = schema.add_attribute(
        "Scheduled departure",
        datamodel::AttrKind::Time,
        false,
    );
    let actual = schema.add_attribute("Actual departure", datamodel::AttrKind::Time, false);
    let gate = schema.add_attribute(
        "Departure gate",
        datamodel::AttrKind::Categorical { cardinality: 40 },
        false,
    );
    let airline = schema.add_source("airline.com", true);
    let orbitz = schema.add_source("orbitz", true);
    let tracker = schema.add_source("flight-tracker", false);
    let aggregator = schema.add_source("aggregator", false);
    let mirror = schema.add_source("aggregator-mirror", false);
    let schema = Arc::new(schema);

    // One flight (AA119 on 12/8), observed by the five sources. The
    // aggregator and its mirror share the same wrong scheduled time — the
    // situation Figure 5 of the paper illustrates.
    let flight = ObjectId(0);
    let mut builder = SnapshotBuilder::new(0);
    builder.add(airline, flight, sched, Value::time(18 * 60 + 15));
    builder.add(orbitz, flight, sched, Value::time(18 * 60 + 15));
    builder.add(tracker, flight, sched, Value::time(18 * 60 + 15));
    builder.add(aggregator, flight, sched, Value::time(19 * 60));
    builder.add(mirror, flight, sched, Value::time(19 * 60));

    builder.add(airline, flight, actual, Value::time(18 * 60 + 27));
    builder.add(orbitz, flight, actual, Value::time(18 * 60 + 25));
    builder.add(tracker, flight, actual, Value::time(18 * 60 + 44));
    builder.add(aggregator, flight, actual, Value::time(18 * 60 + 27));

    builder.add(airline, flight, gate, Value::text("D30"));
    builder.add(orbitz, flight, gate, Value::text("D30"));
    builder.add(aggregator, flight, gate, Value::text("C2"));
    builder.add(mirror, flight, gate, Value::text("C2"));

    let snapshot = builder.build(schema);

    // The airline's values serve as the reference truth.
    let mut gold = GoldStandard::new();
    gold.insert(ItemId::new(flight, sched), Value::time(18 * 60 + 15));
    gold.insert(ItemId::new(flight, actual), Value::time(18 * 60 + 27));
    gold.insert(ItemId::new(flight, gate), Value::text("D30"));

    println!("Observation table: {} items, {} observations\n", snapshot.num_items(), snapshot.num_observations());

    let context = EvaluationContext::new(&snapshot, &gold);
    for name in ["Vote", "TruthFinder", "AccuSim", "AccuCopy"] {
        let method = method_by_name(name).expect("registered method");
        let result = method.run(&context.problem, &FusionOptions::standard());
        let pr = precision_recall(&snapshot, &gold, &result);
        println!("{name:<12} precision {:.2}  (rounds: {})", pr.precision, result.rounds);
        for (item, value) in &result.selected {
            let attr_name = &snapshot.schema().attribute(item.attr).name;
            println!("    {attr_name:<22} -> {value}");
        }
    }

    println!("\nPer-source accuracy against the airline's data:");
    for acc in source_accuracies(&snapshot, &gold) {
        println!(
            "    {:<18} accuracy {}  coverage {:.2}",
            acc.name,
            acc.accuracy
                .map(|a| format!("{a:.2}"))
                .unwrap_or_else(|| "n/a".to_string()),
            acc.coverage
        );
    }
}
