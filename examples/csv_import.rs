//! Importing real (crawled) claims from delimited text files, the format the
//! paper's original data sets were distributed in, and fusing them.
//!
//! Run with: `cargo run --example csv_import [claims.csv [gold.csv]]`
//!
//! Without arguments the example uses a small embedded data set shaped like
//! the paper's Figure-5 flight example.

use datamodel::{AttrKind, CsvReader, DomainSchema};
use deepweb_truth::prelude::*;

const EMBEDDED_CLAIMS: &str = "\
# source,object,attribute,value
airline.com,AA119,Scheduled departure,18:15
flightview,AA119,Scheduled departure,18:15
flightaware,AA119,Scheduled departure,18:15
orbitz,AA119,Scheduled departure,18:22
airline.com,AA119,Scheduled arrival,21:40
flightview,AA119,Scheduled arrival,21:40
flightaware,AA119,Scheduled arrival,19:28
orbitz,AA119,Scheduled arrival,21:45
airline.com,AA119,Departure gate,D30
flightview,AA119,Departure gate,D30
orbitz,AA119,Departure gate,C2
airline.com,UA2372,Scheduled departure,09:05
flightview,UA2372,Scheduled departure,09:05
flightaware,UA2372,Scheduled departure,09:05
orbitz,UA2372,Scheduled departure,09:05
";

const EMBEDDED_GOLD: &str = "\
# object,attribute,value
AA119,Scheduled departure,18:15
AA119,Scheduled arrival,21:40
AA119,Departure gate,D30
UA2372,Scheduled departure,09:05
";

fn flight_schema() -> DomainSchema {
    let mut schema = DomainSchema::new("flight-import");
    schema.add_attribute("Scheduled departure", AttrKind::Time, false);
    schema.add_attribute("Scheduled arrival", AttrKind::Time, false);
    schema.add_attribute("Departure gate", AttrKind::Categorical { cardinality: 60 }, false);
    schema
}

fn main() {
    let claims_text = std::env::args()
        .nth(1)
        .map(|p| std::fs::read_to_string(p).expect("readable claims file"))
        .unwrap_or_else(|| EMBEDDED_CLAIMS.to_string());
    let gold_text = std::env::args()
        .nth(2)
        .map(|p| std::fs::read_to_string(p).expect("readable gold file"))
        .unwrap_or_else(|| EMBEDDED_GOLD.to_string());

    let mut reader = CsvReader::new(flight_schema());
    let snapshot = match reader.read_snapshot(0, &claims_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to parse claims: {e}");
            std::process::exit(1);
        }
    };
    let gold = match reader.read_gold(&gold_text) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("failed to parse gold standard: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "Loaded {} observations on {} items from {} sources; gold standard covers {} items.\n",
        snapshot.num_observations(),
        snapshot.num_items(),
        snapshot.active_sources().len(),
        gold.len()
    );

    let context = EvaluationContext::new(&snapshot, &gold);
    println!("{:<14} {:>10} {:>8}", "method", "precision", "rounds");
    for name in ["Vote", "AccuSim", "AccuFormatAttr", "AccuCopy"] {
        let method = method_by_name(name).expect("registered method");
        let result = method.run(&context.problem, &FusionOptions::standard());
        let pr = precision_recall(&snapshot, &gold, &result);
        println!("{name:<14} {:>10.3} {:>8}", pr.precision, result.rounds);
    }

    println!("\nPer-source accuracy:");
    for acc in source_accuracies(&snapshot, &gold) {
        println!(
            "  {:<14} accuracy {}  coverage {:.2}",
            acc.name,
            acc.accuracy
                .map(|a| format!("{a:.2}"))
                .unwrap_or_else(|| "n/a".into()),
            acc.coverage
        );
    }
}
