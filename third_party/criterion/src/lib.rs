//! Offline stub of `criterion`.
//!
//! The build container has no network access, so this crate provides a
//! wall-clock stand-in for the criterion API the workspace's benches use:
//! [`Criterion`] with the builder knobs, benchmark groups,
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — warm up for the configured time,
//! then time `sample_size` batches and report min/mean/median per
//! iteration — with none of criterion's outlier rejection or HTML reports.
//! The numbers are good enough to compare methods against each other on the
//! same machine, which is all the workspace's benches (and the paper's
//! Figure 12) need.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark configuration and entry point; mirrors `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set how long to run the routine before timing starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Set the timing budget per benchmark (a cap, in this stub).
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, None, &id.into().0, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks; mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self.criterion, Some(&self.name), &id.into().0, f);
        self
    }

    /// Run one benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(self.criterion, Some(&self.name), &id.into().0, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (a no-op in this stub; criterion emits summaries).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized; mirrors
/// `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier with a function name and a parameter label.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", function.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Passed to the benchmark closure to time the routine; mirrors
/// `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Time `routine`: warm up, then record per-sample wall-clock times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_up_start = Instant::now();
        loop {
            black_box(routine());
            if warm_up_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() >= self.measurement_time {
                break; // keep slow benches within the configured budget
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    group: Option<&str>,
    id: &str,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: criterion.sample_size,
        warm_up_time: criterion.warm_up_time,
        measurement_time: criterion.measurement_time,
    };
    f(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{label:<50} (no samples — routine never called iter)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{label:<50} min {:>12} mean {:>12} median {:>12} ({} samples)",
        format_duration(min),
        format_duration(mean),
        format_duration(median),
        samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Define a benchmark group function; supports both the positional form
/// `criterion_group!(name, target, ...)` and the braced configuration form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the benchmark `main` that runs the given groups (the bench target
/// must set `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags like `--bench`; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(200));
        let mut calls = 0u32;
        c.bench_function("counter", |b| b.iter(|| calls += 1));
        assert!(calls > 5, "warm-up plus samples should call the routine");
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut group = c.benchmark_group("g");
        group.bench_function(BenchmarkId::new("f", "param"), |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("g", 3), &3, |b, n| b.iter(|| n * 2));
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(10)), "10 ns");
        assert_eq!(format_duration(Duration::from_micros(15)), "15.00 µs");
        assert_eq!(format_duration(Duration::from_millis(15)), "15.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
