//! Offline stub of `serde_derive`.
//!
//! The build container has no network access, so the real `serde` cannot be
//! vendored. This proc-macro crate accepts `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` on plain (non-generic) structs and enums and
//! emits empty implementations of the marker traits defined by the sibling
//! `serde` stub crate. The derives therefore keep compiling exactly as they
//! would against real serde, and the annotations keep documenting which
//! types are intended to be exportable rows; swapping in the real serde
//! later is a Cargo.toml-only change.
//!
//! Implemented without `syn`/`quote` (also unavailable offline): the input
//! token stream is scanned manually for the `struct`/`enum`/`union` keyword
//! and the following type name.

use proc_macro::{TokenStream, TokenTree};

/// Extract the name of the type a derive macro was applied to, plus its
/// generic parameter list (raw token text between `<` and the matching `>`),
/// by scanning past attributes and visibility modifiers.
fn type_name_and_generics(input: TokenStream) -> (String, String) {
    let mut tokens = input.into_iter().peekable();
    while let Some(token) = tokens.next() {
        match token {
            // Skip attributes: `#` followed by a bracketed group.
            TokenTree::Punct(ref p) if p.as_char() == '#' => {
                let _ = tokens.next();
            }
            TokenTree::Ident(ref ident) => {
                let word = ident.to_string();
                if word == "struct" || word == "enum" || word == "union" {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(name)) => name.to_string(),
                        other => panic!("serde stub derive: expected a type name, got {other:?}"),
                    };
                    let generics = collect_generics(&mut tokens);
                    return (name, generics);
                }
                // `pub`, `pub(crate)` (the group is consumed on its own
                // iteration), and anything else before the keyword: skip.
            }
            _ => {}
        }
    }
    panic!("serde stub derive: no struct/enum/union found in derive input");
}

/// If the next token starts a generic parameter list, consume it (balancing
/// nested `<`/`>`) and return its text, e.g. `"'a, T"`. Returns an empty
/// string for non-generic types.
fn collect_generics(
    tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
) -> String {
    match tokens.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return String::new(),
    }
    let _ = tokens.next(); // consume '<'
    let mut depth = 1usize;
    let mut text = String::new();
    for token in tokens.by_ref() {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        text.push_str(&token.to_string());
        text.push(' ');
    }
    text
}

/// Strip default arguments (`= Foo`) and bounds (`: Bound`) from a generic
/// parameter list so it can be reused as generic *arguments* on the type.
fn generic_args(params: &str) -> String {
    params
        .split(',')
        .map(|param| {
            let param = param.split(['=', ':']).next().unwrap_or("").trim();
            // Drop `const` from const-generic parameters when reusing as args.
            param.strip_prefix("const ").unwrap_or(param).trim()
        })
        .filter(|p| !p.is_empty())
        .collect::<Vec<_>>()
        .join(", ")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, params) = type_name_and_generics(input);
    let args = generic_args(&params);
    let (impl_params, type_args) = if params.is_empty() {
        (String::new(), String::new())
    } else {
        (format!("<{params}>"), format!("<{args}>"))
    };
    format!("impl{impl_params} ::serde::Serialize for {name}{type_args} {{}}")
        .parse()
        .expect("serde stub derive: generated impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, params) = type_name_and_generics(input);
    let args = generic_args(&params);
    let (impl_params, type_args) = if params.is_empty() {
        ("<'de_stub>".to_string(), String::new())
    } else {
        (format!("<'de_stub, {params}>"), format!("<{args}>"))
    };
    format!("impl{impl_params} ::serde::Deserialize<'de_stub> for {name}{type_args} {{}}")
        .parse()
        .expect("serde stub derive: generated impl must parse")
}
