//! Offline stub of `rayon`.
//!
//! The build container has no network access, so this crate reimplements the
//! narrow slice of the rayon API the workspace uses — `par_iter()` /
//! `into_par_iter()` followed by `.map(..).collect::<Vec<_>>()` — on top of
//! `std::thread::scope`.
//!
//! Scheduling is *dynamic*: workers claim one item at a time from a shared
//! atomic cursor, so wildly uneven task costs (an `AccuCopy` run takes
//! hundreds of times longer than a `Vote` run) still balance across cores.
//! Results are returned in input order regardless of completion order, and a
//! panic in any task propagates to the caller once the scope joins, matching
//! rayon's semantics. There is no global thread pool: each `collect` spawns
//! its own scoped workers, which is fine at the workspace's granularity
//! (tens of expensive tasks, not millions of cheap ones).

#![deny(missing_docs)]

use std::marker::PhantomData;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used for a parallel call: the machine's
/// available parallelism, overridable (mainly for tests and sequential
/// baselines) with the `RAYON_NUM_THREADS` environment variable, like rayon.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The rayon-compatible prelude; `use rayon::prelude::*` pulls in the
/// conversion traits and the iterator adaptors.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Run `f(i)` for every `i < len` on a scoped worker pool, collecting the
/// results in index order. `f` only sees indices, so callers decide how an
/// index maps to an item (shared slice read or owned-slot take).
fn run_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().min(len);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    local.push((i, f(i)));
                }
                local
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(local) => buckets.push(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let mut indexed: Vec<(usize, R)> = buckets.into_iter().flatten().collect();
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// A parallel iterator: something that can push its items through a mapping
/// function on multiple threads and return the results in input order.
pub trait ParallelIterator: Sized {
    /// The item type produced by this iterator.
    type Item: Send;

    /// Drive the whole pipeline through `f` in parallel, in input order.
    /// (The stub's internal engine; rayon exposes richer consumers.)
    fn drive<R: Send>(self, f: &(impl Fn(Self::Item) -> R + Sync)) -> Vec<R>;

    /// Map every item through `f`; lazy, like rayon — work happens at
    /// [`collect`](Self::collect).
    fn map<R, F>(self, f: F) -> Map<Self, F, R>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map {
            base: self,
            f,
            _r: PhantomData,
        }
    }

    /// Execute the pipeline and gather the results in input order.
    fn collect<C>(self) -> C
    where
        C: From<Vec<Self::Item>>,
    {
        C::from(self.drive(&|item| item))
    }
}

/// Lazily mapped parallel iterator (the stub's `rayon::iter::Map`).
pub struct Map<B, F, R> {
    base: B,
    f: F,
    _r: PhantomData<fn() -> R>,
}

impl<B, F, R0> ParallelIterator for Map<B, F, R0>
where
    B: ParallelIterator,
    R0: Send,
    F: Fn(B::Item) -> R0 + Sync + Send,
{
    type Item = R0;

    fn drive<R: Send>(self, f: &(impl Fn(R0) -> R + Sync)) -> Vec<R> {
        let inner = self.f;
        self.base.drive(&move |item| f(inner(item)))
    }
}

/// Parallel iterator over `&[T]` (the result of [`par_iter`]).
///
/// [`par_iter`]: IntoParallelRefIterator::par_iter
pub struct SliceIter<'a, T: Sync> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn drive<R: Send>(self, f: &(impl Fn(&'a T) -> R + Sync)) -> Vec<R> {
        run_indexed(self.items.len(), |i| f(&self.items[i]))
    }
}

/// Owning parallel iterator over a `Vec<T>` (the result of
/// [`into_par_iter`]).
///
/// Items are moved out of locked slots as workers claim them; each slot is
/// claimed exactly once, so the locks never contend beyond the claim itself.
///
/// [`into_par_iter`]: IntoParallelIterator::into_par_iter
pub struct VecIter<T: Send> {
    slots: Vec<Mutex<Option<T>>>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn drive<R: Send>(self, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
        let slots = self.slots;
        run_indexed(slots.len(), |i| {
            f(slots[i]
                .lock()
                .expect("rayon stub: slot lock poisoned")
                .take()
                .expect("rayon stub: slot claimed twice"))
        })
    }
}

/// Types convertible into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// The produced item type.
    type Item: Send;
    /// The concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert into a parallel iterator that owns the items.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;

    fn into_par_iter(self) -> VecIter<T> {
        VecIter {
            slots: self.into_iter().map(|t| Mutex::new(Some(t))).collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = VecIter<usize>;

    fn into_par_iter(self) -> VecIter<usize> {
        self.collect::<Vec<_>>().into_par_iter()
    }
}

/// Types whose references yield a borrowing parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// The produced item type (a reference).
    type Item: Send;
    /// The concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Iterate the items by reference, in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_moves_items() {
        let input: Vec<String> = (0..64).map(|i| format!("item-{i}")).collect();
        let lens: Vec<usize> = input.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 64);
        assert_eq!(lens[0], "item-0".len());
        assert_eq!(lens[63], "item-63".len());
    }

    #[test]
    fn uneven_tasks_still_ordered() {
        // Make early items slow so completion order inverts input order.
        let out: Vec<usize> = (0usize..16)
            .into_par_iter()
            .map(|i| {
                std::thread::sleep(std::time::Duration::from_millis((16 - i as u64) * 2));
                i * i
            })
            .collect();
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = Vec::<i32>::new().par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn chained_maps_compose() {
        let input: Vec<i64> = (0..100).collect();
        let out: Vec<i64> = input.par_iter().map(|x| x + 1).map(|x| x * 3).collect();
        assert_eq!(out[9], 30);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let input: Vec<u32> = (0..8).collect();
        let _: Vec<u32> = input
            .par_iter()
            .map(|x| if *x == 5 { panic!("boom") } else { *x })
            .collect();
    }
}
