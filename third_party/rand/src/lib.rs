//! Offline stub of `rand`.
//!
//! The build container has no network access, so this crate reimplements the
//! small slice of the `rand` 0.8 API the workspace uses: [`SeedableRng::
//! seed_from_u64`], [`rngs::StdRng`], and the [`Rng`] methods `gen`,
//! `gen_bool`, and `gen_range` over primitive ranges.
//!
//! The generator is **xoshiro256++** seeded through SplitMix64 — a different
//! stream than real rand's ChaCha12-based `StdRng`, but every consumer in the
//! workspace only relies on *seed determinism* (same seed ⇒ same stream),
//! never on a specific stream. Streams are stable across platforms and
//! releases of this stub; changing them invalidates every calibrated
//! statistical assertion in the workspace, so don't.

#![deny(missing_docs)]

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Create a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step, used to expand a `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Stands in for `rand::rngs::StdRng`; see the crate docs for why the
    /// stream differs from real rand (and why that is fine here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Advance the generator and return the next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            // xoshiro state must not be all zero; SplitMix64 guarantees a
            // well-mixed non-degenerate state for any input.
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl super::RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            StdRng::next_u64(self)
        }
    }
}

/// Object-safe core of a generator: a source of uniform 64-bit words.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the type).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // Match rand's edge-case contract: gen_bool(1.0) is always true.
        if p >= 1.0 {
            return true;
        }
        f64::sample(self) < p
    }

    /// Sample uniformly from a half-open range `lo..hi` (`lo < hi` required).
    ///
    /// The element type is a direct type parameter (as in real rand) so an
    /// untyped integer literal range infers its type from the call site.
    #[inline]
    fn gen_range<T, Range: SampleRange<T>>(&mut self, range: Range) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the standard distribution for this type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`], producing elements of type `T`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty f32 range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($ty:ty => $wide:ty),* $(,)?) => {
        $(
            impl SampleRange<$ty> for std::ops::Range<$ty> {
                #[inline]
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "gen_range: empty integer range");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    // Multiply-shift uniform mapping (Lemire); the tiny
                    // modulo bias of the plain approach is irrelevant for
                    // simulation but this is just as cheap.
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    (self.start as $wide).wrapping_add(hi as $wide) as $ty
                }
            }
            impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
                #[inline]
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty inclusive range");
                    if lo == <$ty>::MIN && hi == <$ty>::MAX {
                        return rng.next_u64() as $ty;
                    }
                    (lo..hi + 1).sample(rng)
                }
            }
        )*
    };
}

impl_int_range!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let i = rng.gen_range(11..90i64);
            assert!((11..90).contains(&i));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        // Every value of a small range is eventually hit.
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn works_through_mut_ref_impl_rng() {
        fn draw(rng: &mut impl Rng) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
