//! Offline stub of `proptest`.
//!
//! The build container has no network access, so this crate reimplements the
//! subset of the proptest API the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` attribute,
//! range and `prop::collection::vec` strategies, and the `prop_assert*`
//! macros.
//!
//! Unlike real proptest there is **no shrinking** and no failure-persistence
//! file: each test runs `cases` iterations with inputs drawn from a seed
//! derived deterministically from the test's name (so a failure reproduces
//! exactly on re-run), and assertion failures panic immediately with the
//! case number in the message.

#![deny(missing_docs)]

#[doc(hidden)]
pub use rand as __rand;

/// Per-test configuration; mirrors `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` randomized cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A value generator; mirrors `proptest::strategy::Strategy` (minus
/// shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut rand::rngs::StdRng) -> Self::Value;
}

impl<T> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut rand::rngs::StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

/// Strategy combinators namespaced like the real crate (`prop::collection`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::Strategy;

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            elem: S,
            size: std::ops::Range<usize>,
        }

        /// Generate vectors whose elements come from `elem` and whose length
        /// is drawn uniformly from `size`.
        pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(!size.is_empty(), "prop::collection::vec: empty size range");
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
                use rand::Rng;
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

/// Everything a property-test module needs; mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Derive a stable per-test seed from the test name, so failures reproduce.
#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    seed
}

/// Define property tests; mirrors `proptest::proptest!`.
///
/// Supports the forms used in the workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0.0f64..1.0, v in prop::collection::vec(1usize..9, 1..4)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let seed = $crate::__seed_for(stringify!($name));
                for case in 0..config.cases {
                    let mut __proptest_rng =
                        <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                            seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                        );
                    $(
                        let $arg =
                            $crate::Strategy::sample(&($strategy), &mut __proptest_rng);
                    )*
                    let run = || -> () { $body };
                    run();
                    let _ = case;
                }
            }
        )*
    };
}

/// Assert inside a property test; mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property test; mirrors
/// `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property test; mirrors
/// `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 10.0f64..20.0, n in 1usize..5) {
            prop_assert!((10.0..20.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in &v {
                prop_assert!(*x < 100);
            }
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::__seed_for("a"), crate::__seed_for("a"));
        assert_ne!(crate::__seed_for("a"), crate::__seed_for("b"));
    }
}
