//! Offline stub of `serde`.
//!
//! The build container has no network access, so the real `serde` cannot be
//! fetched or vendored. The workspace keeps its `#[derive(Serialize,
//! Deserialize)]` annotations — they document which types are meant to be
//! exportable report rows — and this stub makes them compile: [`Serialize`]
//! and [`Deserialize`] are empty marker traits, and the derives (re-exported
//! from the sibling `serde_derive` stub) emit empty impls.
//!
//! Nothing in the workspace performs actual serialization (report output
//! goes through the `bench` crate's plain-text tables), so no serializer
//! machinery is needed. Swapping in the real serde is a Cargo.toml-only
//! change; the source is already written against the real API.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
///
/// Real serde's trait has a `serialize` method driven by a `Serializer`;
/// the workspace never calls it, so the stub carries no methods.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_markers {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Serialize for $ty {}
            impl<'de> Deserialize<'de> for $ty {}
        )*
    };
}

impl_markers!(
    bool, char, String, f32, f64, i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize,
);

impl Serialize for str {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl Serialize for std::time::Duration {}
