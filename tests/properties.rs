//! Property-based tests (proptest) over the core data structures and
//! invariants: bucketing, tolerance, entropy, gold-standard judging, fusion
//! output validity, and generator determinism.

use deepweb_truth::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Build a one-attribute snapshot from arbitrary (source, value) pairs.
fn snapshot_from_values(values: &[f64]) -> Snapshot {
    let mut schema = DomainSchema::new("prop");
    schema.add_attribute("x", datamodel::AttrKind::Numeric { scale: 100.0 }, false);
    for i in 0..values.len() {
        schema.add_source(format!("s{i}"), false);
    }
    let mut builder = SnapshotBuilder::new(0);
    for (i, v) in values.iter().enumerate() {
        builder.add(SourceId(i as u32), ObjectId(0), AttrId(0), Value::number(*v));
    }
    builder.build(Arc::new(schema))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucketing partitions the providers: every source appears in exactly
    /// one bucket, and bucket supports sum to the number of observations.
    #[test]
    fn bucketing_is_a_partition(values in prop::collection::vec(10.0f64..1000.0, 1..40)) {
        let snapshot = snapshot_from_values(&values);
        let item = ItemId::new(ObjectId(0), AttrId(0));
        let buckets = snapshot.buckets(item);
        let total: usize = buckets.iter().map(|b| b.support()).sum();
        prop_assert_eq!(total, values.len());
        let mut seen: Vec<SourceId> = buckets.iter().flat_map(|b| b.providers.clone()).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), values.len());
        // Buckets are ordered by support.
        for w in buckets.windows(2) {
            prop_assert!(w[0].support() >= w[1].support());
        }
    }

    /// Values within the tolerance of each other always land in the same
    /// bucket when they are the only observations.
    #[test]
    fn close_pairs_share_a_bucket(base in 50.0f64..500.0, delta in 0.0f64..0.4) {
        let snapshot = snapshot_from_values(&[base, base * (1.0 + delta * 0.01)]);
        let buckets = snapshot.buckets(ItemId::new(ObjectId(0), AttrId(0)));
        prop_assert_eq!(buckets.len(), 1);
    }

    /// Entropy is non-negative and bounded by log2 of the number of buckets.
    #[test]
    fn entropy_bounds(counts in prop::collection::vec(1usize..50, 1..10)) {
        let e = datamodel::entropy(&counts);
        prop_assert!(e >= -1e-12);
        prop_assert!(e <= (counts.len() as f64).log2() + 1e-9);
    }

    /// Value similarity is symmetric, bounded by [0, 1], and maximal for the
    /// value itself.
    #[test]
    fn similarity_properties(a in -1e6f64..1e6, b in -1e6f64..1e6, scale in 0.1f64..1e4) {
        let va = Value::number(a);
        let vb = Value::number(b);
        let sab = va.similarity(&vb, scale);
        let sba = vb.similarity(&va, scale);
        prop_assert!((sab - sba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&sab));
        prop_assert!(va.similarity(&va, scale) >= sab - 1e-12);
    }

    /// Tolerance-aware matching is symmetric and reflexive.
    #[test]
    fn matching_is_symmetric(a in -1e6f64..1e6, b in -1e6f64..1e6, tol in 0.0f64..1e3) {
        let va = Value::number(a);
        let vb = Value::number(b);
        prop_assert!(va.matches(&va, 0.0));
        prop_assert_eq!(va.matches(&vb, tol), vb.matches(&va, tol));
    }

    /// Statistics helpers stay within their natural bounds.
    #[test]
    fn stats_bounds(xs in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = datamodel::mean(&xs);
        let median = datamodel::median(&xs);
        prop_assert!(mean >= min - 1e-9 && mean <= max + 1e-9);
        prop_assert!(median >= min - 1e-9 && median <= max + 1e-9);
        prop_assert!(datamodel::stddev(&xs) >= 0.0);
    }

    /// Every fusion method selects, for every item, one of the values that
    /// was actually provided (no invented values), and its trust estimates
    /// are finite.
    #[test]
    fn fusion_selects_provided_values(values in prop::collection::vec(10.0f64..1000.0, 2..25)) {
        let snapshot = snapshot_from_values(&values);
        let problem = FusionProblem::from_snapshot(&snapshot);
        let item = ItemId::new(ObjectId(0), AttrId(0));
        let provided: Vec<Value> = snapshot
            .observations(item)
            .iter()
            .map(|o| o.value.clone())
            .collect();
        let tolerance = snapshot.tolerance().tolerance(AttrId(0));
        for (_, method) in all_methods() {
            let result = method.run(&problem, &FusionOptions::standard());
            let selected = result.value_for(item).expect("item fused");
            prop_assert!(
                provided.iter().any(|v| v.matches(selected, tolerance.max(1e-9))),
                "{} selected a value nobody provided: {selected}",
                method.name()
            );
            for t in &result.trust.overall {
                prop_assert!(t.is_finite());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The generator is deterministic in its seed and always produces
    /// snapshots whose provenance covers every observation.
    #[test]
    fn generator_determinism_and_provenance(seed in 0u64..1000) {
        let config = stock_config(seed).scaled(0.01, 0.1);
        let a = generate(&config);
        let b = generate(&config);
        prop_assert_eq!(
            a.reference_snapshot().num_observations(),
            b.reference_snapshot().num_observations()
        );
        let prov = a.reference_provenance();
        prop_assert_eq!(prov.len(), a.reference_snapshot().num_observations());
        // Gold standard only contains values that judge as correct against
        // themselves.
        let day = a.collection.reference_day();
        for (item, value) in day.gold.iter() {
            prop_assert_eq!(day.gold.judge(&day.snapshot, *item, value), Some(true));
        }
    }
}
