//! Property-based tests (proptest) over the core data structures and
//! invariants: bucketing, tolerance, entropy, gold-standard judging, fusion
//! output validity, and generator determinism.

use deepweb_truth::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Build a one-attribute snapshot from arbitrary (source, value) pairs.
fn snapshot_from_values(values: &[f64]) -> Snapshot {
    let mut schema = DomainSchema::new("prop");
    schema.add_attribute("x", datamodel::AttrKind::Numeric { scale: 100.0 }, false);
    for i in 0..values.len() {
        schema.add_source(format!("s{i}"), false);
    }
    let mut builder = SnapshotBuilder::new(0);
    for (i, v) in values.iter().enumerate() {
        builder.add(SourceId(i as u32), ObjectId(0), AttrId(0), Value::number(*v));
    }
    builder.build(Arc::new(schema))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucketing partitions the providers: every source appears in exactly
    /// one bucket, and bucket supports sum to the number of observations.
    #[test]
    fn bucketing_is_a_partition(values in prop::collection::vec(10.0f64..1000.0, 1..40)) {
        let snapshot = snapshot_from_values(&values);
        let item = ItemId::new(ObjectId(0), AttrId(0));
        let buckets = snapshot.buckets(item);
        let total: usize = buckets.iter().map(|b| b.support()).sum();
        prop_assert_eq!(total, values.len());
        let mut seen: Vec<SourceId> = buckets.iter().flat_map(|b| b.providers.clone()).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), values.len());
        // Buckets are ordered by support.
        for w in buckets.windows(2) {
            prop_assert!(w[0].support() >= w[1].support());
        }
    }

    /// Values within the tolerance of each other always land in the same
    /// bucket when they are the only observations.
    #[test]
    fn close_pairs_share_a_bucket(base in 50.0f64..500.0, delta in 0.0f64..0.4) {
        let snapshot = snapshot_from_values(&[base, base * (1.0 + delta * 0.01)]);
        let buckets = snapshot.buckets(ItemId::new(ObjectId(0), AttrId(0)));
        prop_assert_eq!(buckets.len(), 1);
    }

    /// Entropy is non-negative and bounded by log2 of the number of buckets.
    #[test]
    fn entropy_bounds(counts in prop::collection::vec(1usize..50, 1..10)) {
        let e = datamodel::entropy(&counts);
        prop_assert!(e >= -1e-12);
        prop_assert!(e <= (counts.len() as f64).log2() + 1e-9);
    }

    /// Value similarity is symmetric, bounded by [0, 1], and maximal for the
    /// value itself.
    #[test]
    fn similarity_properties(a in -1e6f64..1e6, b in -1e6f64..1e6, scale in 0.1f64..1e4) {
        let va = Value::number(a);
        let vb = Value::number(b);
        let sab = va.similarity(&vb, scale);
        let sba = vb.similarity(&va, scale);
        prop_assert!((sab - sba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&sab));
        prop_assert!(va.similarity(&va, scale) >= sab - 1e-12);
    }

    /// Tolerance-aware matching is symmetric and reflexive.
    #[test]
    fn matching_is_symmetric(a in -1e6f64..1e6, b in -1e6f64..1e6, tol in 0.0f64..1e3) {
        let va = Value::number(a);
        let vb = Value::number(b);
        prop_assert!(va.matches(&va, 0.0));
        prop_assert_eq!(va.matches(&vb, tol), vb.matches(&va, tol));
    }

    /// Statistics helpers stay within their natural bounds.
    #[test]
    fn stats_bounds(xs in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = datamodel::mean(&xs);
        let median = datamodel::median(&xs);
        prop_assert!(mean >= min - 1e-9 && mean <= max + 1e-9);
        prop_assert!(median >= min - 1e-9 && median <= max + 1e-9);
        prop_assert!(datamodel::stddev(&xs) >= 0.0);
    }

    /// The CSR layout of the prepared problem round-trips to exactly the
    /// nested candidate lists the old representation held: for every item,
    /// re-deriving candidates/providers/similarity/formatting links naively
    /// from the snapshot matches what the flat offset/array views return,
    /// and the per-source claim extents recount the providers.
    #[test]
    fn csr_problem_round_trips_to_nested_lists(
        values in prop::collection::vec(10.0f64..1000.0, 2..25),
        extra in prop::collection::vec(1.0f64..100.0, 0..10),
    ) {
        // Two attributes with uneven coverage so claim/provider extents vary.
        let mut schema = DomainSchema::new("prop");
        schema.add_attribute("x", datamodel::AttrKind::Numeric { scale: 100.0 }, false);
        schema.add_attribute("y", datamodel::AttrKind::Numeric { scale: 10.0 }, false);
        for i in 0..values.len() {
            schema.add_source(format!("s{i}"), false);
        }
        let mut builder = SnapshotBuilder::new(0);
        for (i, v) in values.iter().enumerate() {
            builder.add(SourceId(i as u32), ObjectId((i % 3) as u32), AttrId(0), Value::number(*v));
        }
        for (i, v) in extra.iter().enumerate() {
            builder.add(SourceId((i % values.len()) as u32), ObjectId(0), AttrId(1), Value::number(*v));
        }
        let snapshot = builder.build(std::sync::Arc::new(schema));
        let problem = FusionProblem::from_snapshot(&snapshot);

        let mut total_claims = 0usize;
        for item in problem.items() {
            // Naive nested reconstruction from the snapshot's buckets — the
            // exact structure the pre-CSR `Candidate` vectors held.
            let buckets = snapshot.buckets(item.id());
            let scale = snapshot.tolerance().similarity_scale(item.id().attr);
            prop_assert_eq!(item.num_candidates(), buckets.len());
            prop_assert_eq!(item.attr(), item.id().attr.index());
            let mut union: Vec<u32> = Vec::new();
            for (c, bucket) in buckets.iter().enumerate() {
                let cand = item.candidate(c);
                prop_assert_eq!(cand.value(), &bucket.representative);
                let naive_providers: Vec<u32> = bucket
                    .providers
                    .iter()
                    .filter_map(|s| problem.source_index(*s).map(|i| i as u32))
                    .collect();
                prop_assert_eq!(cand.providers(), &naive_providers[..]);
                union.extend_from_slice(&naive_providers);
                // Similarity links: same pairs, same order, above the 0.05
                // floor the problem documents.
                let naive_similar: Vec<(u32, f64)> = buckets
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != c)
                    .map(|(j, other)| (j as u32, bucket.representative.similarity(&other.representative, scale)))
                    .filter(|&(_, sim)| sim > 0.05)
                    .collect();
                prop_assert_eq!(cand.similar(), &naive_similar[..]);
                let naive_coarse: Vec<u32> = buckets
                    .iter()
                    .enumerate()
                    .filter(|&(j, other)| j != c && other.representative.subsumes(&bucket.representative))
                    .map(|(j, _)| j as u32)
                    .collect();
                prop_assert_eq!(cand.coarse_supporters(), &naive_coarse[..]);
            }
            union.sort_unstable();
            union.dedup();
            prop_assert_eq!(item.providers(), &union[..]);
            let naive_slots: usize = (0..buckets.len())
                .map(|c| item.candidate(c).providers().len())
                .sum();
            prop_assert_eq!(item.total_provider_slots(), naive_slots);
            total_claims += naive_slots;
        }
        // Claim CSR: per-source extents re-count every (item, candidate,
        // provider) slot exactly once, in item order.
        prop_assert_eq!(problem.num_claims(), total_claims);
        for (s, claims) in problem.claims_by_source().enumerate() {
            let mut last_item = 0u32;
            for &(i, c) in claims {
                prop_assert!(i >= last_item, "claims of source {} not item-ordered", s);
                last_item = i;
                let providers = problem.item(i as usize).candidate(c as usize).providers();
                prop_assert!(providers.contains(&(s as u32)));
            }
        }
    }

    /// The flat SoA per-attribute trust lookup matches the nested
    /// `Vec<Vec<f64>>` semantics for every (source, attribute) pair.
    #[test]
    fn soa_trust_matches_nested_semantics(
        rows in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 4..5), 1..12),
    ) {
        let num_sources = rows.len();
        let num_attrs = rows[0].len();
        let mut estimate = fusion::TrustEstimate::uniform(num_sources, num_attrs, 0.0, true);
        let pa = estimate.per_attr.as_mut().unwrap();
        for (s, row) in rows.iter().enumerate() {
            for (a, &v) in row.iter().enumerate() {
                pa.set(s, a, v);
            }
        }
        // Nested reference: plain Vec<Vec<f64>> indexed [source][attr].
        let nested: Vec<Vec<f64>> = rows.clone();
        for (s, nested_row) in nested.iter().enumerate() {
            prop_assert_eq!(estimate.per_attr.as_ref().unwrap().row(s), &nested_row[..]);
            for (a, &expected) in nested_row.iter().enumerate() {
                prop_assert_eq!(estimate.of(s, a), expected);
                prop_assert_eq!(estimate.per_attr.as_ref().unwrap().of(s, a), expected);
            }
        }
        // Overall lookups ignore the per-attr table only when it is absent.
        let overall_only = fusion::TrustEstimate::uniform(num_sources, num_attrs, 0.7, false);
        for s in 0..num_sources {
            for a in 0..num_attrs {
                prop_assert_eq!(overall_only.of(s, a), 0.7);
            }
        }
    }

    /// A warm `Bucketer` (the arena's allocation-free bucketing path)
    /// produces exactly the buckets `Snapshot::buckets` produces, item after
    /// item, across differently-shaped snapshots.
    #[test]
    fn warm_bucketing_matches_cold_bucketing(
        first in prop::collection::vec(10.0f64..1000.0, 1..30),
        second in prop::collection::vec(1.0f64..100.0, 1..10),
    ) {
        let snapshots = [snapshot_from_values(&first), snapshot_from_values(&second)];
        let mut bucketer = datamodel::Bucketer::new();
        let mut out = Vec::new();
        for snapshot in &snapshots {
            for (item, _) in snapshot.items() {
                snapshot.buckets_into(*item, &mut bucketer, &mut out);
                prop_assert_eq!(&out, &snapshot.buckets(*item));
            }
        }
    }

    /// A warm [`evaluation::ShardArena`] refill equals a fresh
    /// `FusionProblem::from_snapshot` — same CSR arrays, same offset tables,
    /// same claim order (`FusionProblem` equality compares all of them) —
    /// across consecutive differently-shaped snapshots, including the
    /// empty-day and single-source edge cases. This is the invariant that
    /// makes the batch runner bit-identical to the cold runners.
    #[test]
    fn arena_refill_equals_fresh_preparation(
        first in prop::collection::vec(10.0f64..1000.0, 2..20),
        second in prop::collection::vec(10.0f64..1000.0, 1..8),
        third in prop::collection::vec(1.0f64..50.0, 1..2),
    ) {
        // Differently-shaped days: a wide snapshot, a narrower one, a
        // single-source one, and an empty one, refilled into ONE arena in
        // sequence (each shape both follows and precedes a different shape).
        let wide = snapshot_from_values(&first);
        let narrow = snapshot_from_values(&second);
        let single_source = snapshot_from_values(&third);
        let empty = snapshot_from_values(&[]);

        let mut arena = evaluation::ShardArena::new();
        for snapshot in [&wide, &empty, &narrow, &single_source, &wide, &empty] {
            let warm = arena.prepare(snapshot);
            let fresh = FusionProblem::from_snapshot(snapshot);
            prop_assert_eq!(warm, &fresh);
            prop_assert_eq!(warm.num_items(), fresh.num_items());
            prop_assert_eq!(warm.num_claims(), fresh.num_claims());
        }
        // The empty day prepares to a consistent zero-item problem.
        let empty_problem = arena.prepare(&empty);
        prop_assert_eq!(empty_problem.num_items(), 0);
        prop_assert_eq!(empty_problem.num_candidates(), 0);
        // And a single-source day round-trips its one claim list.
        let single_problem = arena.prepare(&single_source);
        prop_assert_eq!(single_problem.num_sources(), third.len());
        prop_assert_eq!(
            single_problem.claims_by_source().map(<[_]>::len).sum::<usize>(),
            single_problem.num_claims()
        );
    }

    /// Running any method through a warm arena (shared scratch, refilled
    /// problem) gives the same selection, trust, and round count as a cold
    /// run on a fresh problem — scratch reuse is stateless.
    #[test]
    fn warm_arena_runs_equal_cold_runs(
        first in prop::collection::vec(10.0f64..1000.0, 3..15),
        second in prop::collection::vec(10.0f64..1000.0, 2..10),
    ) {
        let snapshots = [snapshot_from_values(&first), snapshot_from_values(&second)];
        let mut arena = evaluation::ShardArena::new();
        for snapshot in &snapshots {
            arena.prepare(snapshot);
            let cold_problem = FusionProblem::from_snapshot(snapshot);
            for (_, method) in all_methods() {
                let warm = arena.run(method.as_ref(), &FusionOptions::standard());
                let cold = method.run(&cold_problem, &FusionOptions::standard());
                prop_assert_eq!(&warm.selection, &cold.selection);
                prop_assert_eq!(&warm.trust.overall, &cold.trust.overall);
                prop_assert_eq!(warm.rounds, cold.rounds);
            }
        }
    }

    /// Every fusion method selects, for every item, one of the values that
    /// was actually provided (no invented values), and its trust estimates
    /// are finite.
    #[test]
    fn fusion_selects_provided_values(values in prop::collection::vec(10.0f64..1000.0, 2..25)) {
        let snapshot = snapshot_from_values(&values);
        let problem = FusionProblem::from_snapshot(&snapshot);
        let item = ItemId::new(ObjectId(0), AttrId(0));
        let provided: Vec<Value> = snapshot
            .observations(item)
            .iter()
            .map(|o| o.value.clone())
            .collect();
        let tolerance = snapshot.tolerance().tolerance(AttrId(0));
        for (_, method) in all_methods() {
            let result = method.run(&problem, &FusionOptions::standard());
            let selected = result.value_for(item).expect("item fused");
            prop_assert!(
                provided.iter().any(|v| v.matches(selected, tolerance.max(1e-9))),
                "{} selected a value nobody provided: {selected}",
                method.name()
            );
            for t in &result.trust.overall {
                prop_assert!(t.is_finite());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The generator is deterministic in its seed and always produces
    /// snapshots whose provenance covers every observation.
    #[test]
    fn generator_determinism_and_provenance(seed in 0u64..1000) {
        let config = stock_config(seed).scaled(0.01, 0.1);
        let a = generate(&config);
        let b = generate(&config);
        prop_assert_eq!(
            a.reference_snapshot().num_observations(),
            b.reference_snapshot().num_observations()
        );
        let prov = a.reference_provenance();
        prop_assert_eq!(prov.len(), a.reference_snapshot().num_observations());
        // Gold standard only contains values that judge as correct against
        // themselves.
        let day = a.collection.reference_day();
        for (item, value) in day.gold.iter() {
            prop_assert_eq!(day.gold.judge(&day.snapshot, *item, value), Some(true));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Copier-ring members only ever relay their direct ring source: every
    /// claim a member makes is also claimed by the previous ring member with
    /// the *identical* value (copiers copy or drop, never invent).
    #[test]
    fn ring_member_claims_mirror_their_ring_source(seed in 0u64..1000) {
        let world = datagen::Scenario::new("prop_ring")
            .with_seed(seed)
            .scaled_to(0.03)
            .over_days(1)
            .with_copier_ring(4, 0.3, 0.9)
            .build();
        let snapshot = world.domain.reference_snapshot();
        prop_assert_eq!(world.ring_sources.len(), 4);
        for pair in world.ring_sources.windows(2) {
            let (upstream, member) = (pair[0], pair[1]);
            let items = snapshot.items_of_source(member);
            prop_assert!(!items.is_empty(), "ring member {member:?} claims nothing");
            for item in items {
                let copied = snapshot.value_of(member, item).unwrap();
                let original = snapshot.value_of(upstream, item);
                prop_assert_eq!(
                    original, Some(copied),
                    "ring member {:?} deviates from its source {:?} on {:?}",
                    member, upstream, item
                );
            }
        }
    }

    /// Zipf coverage is monotone non-increasing in rank at the config level,
    /// and the realized worlds honour it: the top-third of the ranked sources
    /// make strictly more claims than the bottom third.
    #[test]
    fn zipf_coverage_is_heavy_tailed(seed in 0u64..1000, exponent in 0.6f64..1.8) {
        let scenario = datagen::Scenario::new("prop_zipf")
            .with_seed(seed)
            .scaled_to(0.03)
            .over_days(1)
            .with_zipf_coverage(exponent);
        let config = scenario.config();
        let world = scenario.build();
        let mut last = f64::INFINITY;
        for &s in &world.zipf_ranked {
            let cov = config.sources[s.index()].object_coverage;
            prop_assert!(cov <= last + 1e-12, "coverage not monotone at {:?}", s);
            last = cov;
        }
        let snapshot = world.domain.reference_snapshot();
        let claims = |sources: &[datamodel::SourceId]| -> usize {
            sources.iter().map(|&s| snapshot.items_of_source(s).len()).sum()
        };
        let third = world.zipf_ranked.len() / 3;
        prop_assert!(third > 0);
        let top = claims(&world.zipf_ranked[..third]);
        let bottom = claims(&world.zipf_ranked[world.zipf_ranked.len() - third..]);
        prop_assert!(
            top > bottom,
            "top-third claims {} not above bottom-third {}", top, bottom
        );
    }

    /// Quality flips are surgical and land on target: against a same-seed
    /// control world without the flip knob, the flipped sources' pre-flip
    /// days are *bit-identical* (identical claim and error counts), while
    /// from the flip day onwards their realized error rate jumps well above
    /// the control and at least to the flipped error budget
    /// (`1 - accuracy_after`; staleness compounds on top of it).
    #[test]
    fn quality_flip_matches_pre_and_post_error_rates(seed in 0u64..1000) {
        let flip_day = 2u32;
        let accuracy_after = 0.45f64;
        let base = datagen::Scenario::new("prop_flip")
            .with_seed(seed)
            .scaled_to(0.06)
            .over_days(4);
        let flipped = base.clone().with_quality_flips(6, flip_day, accuracy_after).build();
        let control = base.build();
        prop_assert_eq!(flipped.flipped_sources.len(), 6);

        // Aggregate (errors, claims) over the flipped sources for one day.
        let tally = |world: &datagen::ScenarioWorld, day: usize| -> (usize, usize) {
            let snapshot = &world.domain.collection.day(day).snapshot;
            let prov = &world.domain.provenance[day];
            let mut errors = 0;
            let mut claims = 0;
            for &s in &flipped.flipped_sources {
                for item in snapshot.items_of_source(s) {
                    claims += 1;
                    let p = prov.get(item, s).expect("claim has provenance");
                    if !p.outcome.is_correct() {
                        errors += 1;
                    }
                }
            }
            (errors, claims)
        };

        // Pre-flip days are untouched by the knob: same claim volume, same
        // error count, and the very same values as the control world.
        for day in 0..flip_day as usize {
            let (f_err, f_n) = tally(&flipped, day);
            let (c_err, c_n) = tally(&control, day);
            prop_assert!(f_n > 200, "too few claims to measure");
            prop_assert_eq!((f_err, f_n), (c_err, c_n), "pre-flip day {} disturbed", day);
            let f_snap = &flipped.domain.collection.day(day).snapshot;
            let c_snap = &control.domain.collection.day(day).snapshot;
            for &s in &flipped.flipped_sources {
                for item in f_snap.items_of_source(s) {
                    prop_assert_eq!(f_snap.value_of(s, item), c_snap.value_of(s, item));
                }
            }
        }

        // Post-flip days: rate jumps well above the control and reaches at
        // least the flipped error budget (day 1 is the pre-flip steady state
        // once stale errors can materialize).
        let (pre_err, pre_n) = tally(&flipped, 1);
        let pre_rate = pre_err as f64 / pre_n as f64;
        for day in flip_day as usize..4 {
            let (f_err, f_n) = tally(&flipped, day);
            let (c_err, c_n) = tally(&control, day);
            let post_rate = f_err as f64 / f_n as f64;
            let control_rate = c_err as f64 / c_n as f64;
            prop_assert!(
                post_rate >= 1.0 - accuracy_after - 0.05,
                "day {}: post-flip error rate {} below the flipped budget {}",
                day, post_rate, 1.0 - accuracy_after
            );
            prop_assert!(
                post_rate > control_rate + 0.15 && post_rate > pre_rate + 0.15,
                "day {}: post-flip rate {} too close to control {} / pre-flip {}",
                day, post_rate, control_rate, pre_rate
            );
            prop_assert!(post_rate < 0.95, "day {}: flip degenerated to all-errors", day);
        }
    }
}
