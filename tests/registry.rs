//! Integration tests pinning the fusion registry to the paper's Table 7:
//! exactly sixteen methods, exact order, exact categories — and every one of
//! them runs end-to-end on a tiny generated snapshot through both the
//! sequential and the parallel evaluation path.

use deepweb_truth::prelude::*;
use evaluation::{same_results, ParallelRunner};
use fusion::MethodCategory;

/// Table 7 of the paper, in row order: (method name, Table-6 category).
const TABLE_7: [(&str, MethodCategory); 16] = [
    ("Vote", MethodCategory::Baseline),
    ("Hub", MethodCategory::WebLink),
    ("AvgLog", MethodCategory::WebLink),
    ("Invest", MethodCategory::WebLink),
    ("PooledInvest", MethodCategory::WebLink),
    ("2-Estimates", MethodCategory::IrBased),
    ("3-Estimates", MethodCategory::IrBased),
    ("Cosine", MethodCategory::IrBased),
    ("TruthFinder", MethodCategory::Bayesian),
    ("AccuPr", MethodCategory::Bayesian),
    ("PopAccu", MethodCategory::Bayesian),
    ("AccuSim", MethodCategory::Bayesian),
    ("AccuFormat", MethodCategory::Bayesian),
    ("AccuSimAttr", MethodCategory::Bayesian),
    ("AccuFormatAttr", MethodCategory::Bayesian),
    ("AccuCopy", MethodCategory::CopyingAffected),
];

#[test]
fn registry_matches_table_7_exactly() {
    let methods = all_methods();
    assert_eq!(methods.len(), 16);
    for (i, ((category, method), (expected_name, expected_category))) in
        methods.iter().zip(TABLE_7).enumerate()
    {
        assert_eq!(method.name(), expected_name, "row {i} name");
        assert_eq!(*category, expected_category, "row {i} category");
    }
}

#[test]
fn every_method_runs_end_to_end_on_a_tiny_snapshot() {
    let domain = generate(&stock_config(5).scaled(0.01, 0.1));
    let day = domain.collection.reference_day();
    let context = EvaluationContext::new(&day.snapshot, &day.gold);

    for (category, method) in all_methods() {
        let result = method.run(&context.problem, &FusionOptions::standard());
        // A value is selected for every prepared item and trust is finite.
        assert_eq!(
            result.selected.len(),
            context.problem.num_items(),
            "{} selected a value for every item",
            method.name()
        );
        for trust in &result.trust.overall {
            assert!(trust.is_finite(), "{} trust finite", method.name());
        }
        let pr = precision_recall(&day.snapshot, &day.gold, &result);
        assert!(
            (0.0..=1.0).contains(&pr.precision),
            "{} ({}) precision {} out of range",
            method.name(),
            category.label(),
            pr.precision
        );
    }
}

#[test]
fn parallel_runner_reproduces_sequential_rows_on_a_fixed_seed() {
    let domain = generate(&stock_config(1234).scaled(0.01, 0.1));
    let day = domain.collection.reference_day();
    let context = EvaluationContext::new(&day.snapshot, &day.gold);
    let sequential = evaluate_all_methods(&context);
    let parallel = ParallelRunner::new().evaluate_all_methods(&context);
    assert!(
        same_results(&sequential, &parallel),
        "parallel evaluation must be bit-identical to sequential (elapsed aside)"
    );
    // And the rows come back in Table-7 order.
    for (row, (expected_name, _)) in parallel.iter().zip(TABLE_7) {
        assert_eq!(row.method, expected_name);
    }
}
