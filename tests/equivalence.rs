//! Golden-value regression suite for the dense hot-path overhaul.
//!
//! The triangular `CopyMatrix`, the CSR co-claim index, and the scratch-buffer
//! fusion rounds are representation changes: every method must keep producing
//! the numbers it produced with the map-based layout. The fusion crate asserts
//! bit-identical selections/trust against a frozen reference implementation;
//! this suite pins the user-visible end: Table-7 precision (with and without
//! input trust) on seeded Stock and Flight domains, including the oracle
//! known-copying path. The values are exact ratios of judged items, so they
//! are stable across machines as long as fusion stays deterministic.

use copydetect::known_copying;
use datagen::{flight_config, generate, stock_config};
use evaluation::{evaluate_method, EvaluationContext};
use fusion::{method_by_name, MethodCategory};

/// Evaluate one method and return `(precision without trust, precision with
/// trust, rounds)`.
fn run(context: &EvaluationContext<'_>, name: &str) -> (f64, f64, usize) {
    let method = method_by_name(name).expect("registry method");
    let row = evaluate_method(context, MethodCategory::Bayesian, method.as_ref());
    (
        row.precision_without_trust,
        row.precision_with_trust,
        row.rounds,
    )
}

fn assert_golden(actual: (f64, f64, usize), golden: (f64, f64, usize), label: &str) {
    assert!(
        (actual.0 - golden.0).abs() < 1e-12
            && (actual.1 - golden.1).abs() < 1e-12
            && actual.2 == golden.2,
        "{label}: got {actual:?}, golden {golden:?}"
    );
}

#[test]
fn stock_methods_match_golden_precisions() {
    let domain = generate(&stock_config(2012).scaled(0.02, 0.1));
    let day = domain.collection.reference_day();
    let context = EvaluationContext::new(&day.snapshot, &day.gold);
    assert_golden(
        run(&context, "Vote"),
        (0.8860759493670886, 0.8860759493670886, 0),
        "stock Vote",
    );
    assert_golden(
        run(&context, "AccuFormatAttr"),
        (0.8765822784810127, 0.9462025316455697, 3),
        "stock AccuFormatAttr",
    );
    assert_golden(
        run(&context, "AccuCopy"),
        (0.8765822784810127, 0.8734177215189873, 4),
        "stock AccuCopy",
    );
}

/// The flight context carries the oracle copy report (Table 5), so the
/// with-trust AccuCopy column exercises the known-copying path end to end.
#[test]
fn flight_methods_match_golden_precisions_including_oracle() {
    let domain = generate(&flight_config(2012).scaled(0.1, 0.06));
    let day = domain.collection.reference_day();
    let report = known_copying(day.snapshot.schema());
    let context = EvaluationContext::new(&day.snapshot, &day.gold).with_known_copying(&report);
    assert_golden(run(&context, "Vote"), (0.795, 0.795, 0), "flight Vote");
    assert_golden(
        run(&context, "AccuFormatAttr"),
        (0.6633333333333333, 0.9833333333333333, 6),
        "flight AccuFormatAttr",
    );
    assert_golden(
        run(&context, "AccuCopy"),
        (0.6416666666666667, 0.995, 8),
        "flight AccuCopy",
    );
}
