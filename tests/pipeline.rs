//! End-to-end integration tests: generate a domain, profile it, detect
//! copying, fuse, and evaluate — asserting the paper's qualitative findings
//! hold on the generated data.

use deepweb_truth::prelude::*;

fn stock_domain() -> GeneratedDomain {
    generate(&stock_config(2012).scaled(0.06, 0.15))
}

// Scale 0.15 (180 flights), not smaller: the Section-3.4 copier-removal
// effect is a statistical claim about the planted copy groups, and below
// ~150 flights the five groups are thin enough that an unlucky stream can
// invert it (0.08 with this seed loses 2.6 points; every probed seed at
// 0.15+ gains 0.5-11 points, matching the paper's .864 -> .927).
fn flight_domain() -> GeneratedDomain {
    generate(&flight_config(20_120_826).scaled(0.15, 0.1))
}

#[test]
fn stock_pipeline_reproduces_the_papers_quality_findings() {
    let domain = stock_domain();
    let day = domain.collection.reference_day();

    // Section 3.1: high redundancy.
    let redundancy = redundancy_summary(&day.snapshot);
    assert!(
        redundancy.mean_item_redundancy > 0.45,
        "stock item redundancy {}",
        redundancy.mean_item_redundancy
    );

    // Section 3.2: a substantial fraction of items have conflicting values.
    let inconsistency = snapshot_inconsistency(&day.snapshot);
    assert!(
        inconsistency.fraction_conflicting > 0.4,
        "conflicting fraction {}",
        inconsistency.fraction_conflicting
    );
    assert!(inconsistency.mean_num_values > 1.3);

    // Dominant values are good but not perfect (paper: 0.908).
    let dominant = dominant_value_precision(&day.snapshot, &day.gold);
    assert!(
        dominant > 0.8 && dominant < 0.999,
        "dominant-value precision {dominant}"
    );

    // Section 3.3: source accuracies spread widely, authorities are good but
    // not perfect.
    let accuracies = source_accuracies(&day.snapshot, &day.gold);
    let values: Vec<f64> = accuracies.iter().filter_map(|a| a.accuracy).collect();
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(0.0, f64::max);
    assert!(min < 0.7, "worst source accuracy {min}");
    assert!(max > 0.9, "best source accuracy {max}");
    // Authorities are good but not perfect (the paper's Bloomberg sits at
    // .83 because it applies different semantics on statistical attributes).
    let authority_accs: Vec<f64> = accuracies
        .iter()
        .filter(|a| a.authority)
        .filter_map(|a| a.accuracy)
        .collect();
    assert!(!authority_accs.is_empty());
    let avg_auth = authority_accs.iter().sum::<f64>() / authority_accs.len() as f64;
    assert!(avg_auth > 0.82, "average authority accuracy {avg_auth}");
    for acc in &authority_accs {
        assert!(*acc > 0.7 && *acc < 1.0, "authority accuracy {acc}");
    }
}

#[test]
fn flight_copier_removal_improves_dominant_values() {
    let domain = flight_domain();
    let day = domain.collection.reference_day();
    let before = dominant_value_precision(&day.snapshot, &day.gold);
    let copiers: Vec<SourceId> = domain
        .copy_groups
        .iter()
        .flat_map(|g| g[1..].to_vec())
        .collect();
    let after = dominant_value_precision(&day.snapshot.remove_sources(&copiers), &day.gold);
    // Section 3.4: removing copiers increases the precision of dominant
    // values on the Flight domain (paper: .864 -> .927).
    assert!(
        after >= before - 1e-9,
        "removing copiers should not hurt: before {before}, after {after}"
    );
}

#[test]
fn fusion_beats_or_matches_voting_and_oracle_trust_helps() {
    let domain = stock_domain();
    let day = domain.collection.reference_day();
    let oracle = known_copying(day.snapshot.schema());
    let context = EvaluationContext::new(&day.snapshot, &day.gold).with_known_copying(&oracle);
    let rows = evaluate_all_methods(&context);
    assert_eq!(rows.len(), 16);

    let vote = rows.iter().find(|r| r.method == "Vote").unwrap().clone();
    let best = rows
        .iter()
        .max_by(|a, b| {
            a.precision_without_trust
                .partial_cmp(&b.precision_without_trust)
                .unwrap()
        })
        .unwrap()
        .clone();
    // Section 4: the best fusion method improves over naive voting.
    assert!(
        best.precision_without_trust >= vote.precision_without_trust,
        "best {} ({}) vs vote {}",
        best.method,
        best.precision_without_trust,
        vote.precision_without_trust
    );
    // Fusion finds correct values for the overwhelming majority of items
    // (paper: 96% on average across domains).
    assert!(best.precision_without_trust > 0.85);

    // Giving sampled trust as input helps most methods.
    let helped = rows
        .iter()
        .filter(|r| r.method != "Vote")
        .filter(|r| r.precision_with_trust >= r.precision_without_trust - 0.02)
        .count();
    assert!(helped >= 12, "only {helped} methods helped by oracle trust");
}

#[test]
fn attribute_level_trust_helps_on_stock_like_data() {
    let domain = stock_domain();
    let day = domain.collection.reference_day();
    let context = EvaluationContext::new(&day.snapshot, &day.gold);
    let plain = compare_methods(&context, "AccuSim", "AccuSimAttr").unwrap();
    // The paper observes that distinguishing per-attribute trustworthiness
    // improves precision on Stock (Table 8: +.016). On generated data the
    // effect direction can fluctuate with the seed when the ambiguity
    // adoption is near one half, so only guard against a large regression.
    assert!(
        plain.delta_precision > -0.05,
        "AccuSimAttr should not be clearly worse than AccuSim on Stock-like data: {}",
        plain.delta_precision
    );
}

#[test]
fn accucopy_is_best_in_class_on_flight_like_data() {
    let domain = flight_domain();
    let day = domain.collection.reference_day();
    let oracle = known_copying(day.snapshot.schema());
    let context = EvaluationContext::new(&day.snapshot, &day.gold).with_known_copying(&oracle);

    let vote = evaluation::runner::run_named_method(
        &context,
        "Vote",
        &fusion::FusionOptions::standard(),
    )
    .unwrap();
    let accucopy = evaluation::runner::run_named_method(
        &context,
        "AccuCopy",
        &fusion::FusionOptions::standard()
            .with_input_trust(context.sampled_trust.clone())
            .with_known_copying(context.known_copying.clone().unwrap()),
    )
    .unwrap();
    let vote_pr = precision_recall(&day.snapshot, &day.gold, &vote);
    let copy_pr = precision_recall(&day.snapshot, &day.gold, &accucopy);
    // The paper's headline Flight result: AccuCopy with correct trust and
    // copying knowledge clearly beats voting (.960 vs .864).
    assert!(
        copy_pr.precision >= vote_pr.precision,
        "AccuCopy ({}) should be at least as good as VOTE ({}) on flight-like data",
        copy_pr.precision,
        vote_pr.precision
    );
}

#[test]
fn copy_detection_recovers_planted_groups_on_flight() {
    let domain = flight_domain();
    let day = domain.collection.reference_day();
    let report = CopyDetector::new().detect(&day.snapshot, &day.gold);
    // Every planted pair should receive a clearly-above-prior probability.
    let mut planted = Vec::new();
    for group in &domain.copy_groups {
        for i in 0..group.len() {
            for j in (i + 1)..group.len() {
                planted.push(report.probability(group[i], group[j]));
            }
        }
    }
    let mean_planted = planted.iter().sum::<f64>() / planted.len() as f64;
    assert!(mean_planted > 0.6, "mean planted-pair probability {mean_planted}");
}

#[test]
fn incremental_sources_peak_before_using_everything() {
    let domain = flight_domain();
    let day = domain.collection.reference_day();
    let context = EvaluationContext::new(&day.snapshot, &day.gold);
    let series = incremental_recall(&context, &["Vote"], 4);
    let vote = &series[0];
    let peak = vote.peak().unwrap();
    // Fusing a subset of high-recall sources is at least as good as fusing
    // everything (paper, Section 4.2 / Figure 9).
    assert!(peak.recall >= vote.final_recall() - 1e-9);
    assert!(peak.num_sources <= day.snapshot.active_sources().len());
}

#[test]
fn over_time_summaries_are_stable() {
    let domain = generate(&stock_config(99).scaled(0.02, 0.2));
    let rows = evaluate_over_time(&domain.collection, false);
    for row in rows {
        assert!(row.deviation < 0.2, "{} deviation {}", row.method, row.deviation);
        assert!(row.average > 0.5, "{} average {}", row.method, row.average);
    }
}
