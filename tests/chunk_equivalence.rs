//! Chunked-vs-sequential equivalence harness for intra-day parallel fusion.
//!
//! The contract of `fusion::chunking` is that the intra-day chunk count is
//! invisible in the output: fixed chunk boundaries plus ordered merges make
//! every method run **bit-identical** to its sequential run — same selection,
//! same trust bits, same round count — for any chunk count, any thread count,
//! and both trust modes. This suite pins that across:
//!
//! * all sixteen registry methods;
//! * chunk counts that do not divide the item count (including more chunks
//!   than items);
//! * degenerate shapes — one item, a handful of items, single-candidate
//!   items, ragged candidate rows;
//! * `RAYON_NUM_THREADS` ∈ {1, 2, 4} (the pool size changes how chunk tasks
//!   interleave, never what they compute);
//! * random seeded collections (proptest) and the kitchen-sink scenario
//!   world;
//! * the evaluation-layer plumbing (`evaluate_method_with_chunks` must
//!   reproduce `evaluate_method` rows, oracle copying included).

use datagen::scenario::by_name;
use datagen::{generate, stock_config};
use datamodel::{AttrId, AttrKind, DomainSchema, ObjectId, Snapshot, SnapshotBuilder, SourceId,
    Value};
use evaluation::{evaluate_method, evaluate_method_with_chunks, same_results, EvaluationContext};
use fusion::{all_methods, FusionOptions, FusionProblem};
use proptest::prelude::*;
use std::sync::Arc;

/// Chunk counts chosen to not divide typical item counts, including "more
/// chunks than anything in the problem".
const CHUNK_COUNTS: [usize; 4] = [2, 3, 5, 16];

/// Pool sizes the suite re-checks under. The rayon stand-in reads
/// `RAYON_NUM_THREADS` per call, so an in-process `set_var` takes effect for
/// the runs that follow.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn set_threads(n: usize) {
    std::env::set_var("RAYON_NUM_THREADS", n.to_string());
}

/// Run every registry method sequentially and at each chunk count, asserting
/// bit-identical results (selection, trust bits, per-attribute trust, rounds,
/// selected values).
fn assert_all_methods_chunk_invariant(problem: &FusionProblem, base: &FusionOptions, label: &str) {
    for (_, method) in all_methods() {
        let sequential = method.run(problem, base);
        let seq_bits: Vec<u64> = sequential.trust.overall.iter().map(|t| t.to_bits()).collect();
        for chunks in CHUNK_COUNTS {
            let opts = base.clone().with_intra_day_chunks(chunks);
            let chunked = method.run(problem, &opts);
            let name = &sequential.method;
            assert_eq!(
                sequential.selection, chunked.selection,
                "{label}: {name} selection diverged at {chunks} chunks"
            );
            assert_eq!(
                sequential.rounds, chunked.rounds,
                "{label}: {name} rounds diverged at {chunks} chunks"
            );
            let chunk_bits: Vec<u64> =
                chunked.trust.overall.iter().map(|t| t.to_bits()).collect();
            assert_eq!(
                seq_bits, chunk_bits,
                "{label}: {name} trust bits diverged at {chunks} chunks"
            );
            assert_eq!(
                sequential.trust.per_attr, chunked.trust.per_attr,
                "{label}: {name} per-attribute trust diverged at {chunks} chunks"
            );
            assert_eq!(
                sequential.selected, chunked.selected,
                "{label}: {name} selected values diverged at {chunks} chunks"
            );
        }
    }
}

/// A one-item snapshot: two sources disagreeing on a single value.
fn one_item_snapshot() -> Snapshot {
    let mut schema = DomainSchema::new("chunk-edge");
    schema.add_attribute("x", AttrKind::Numeric { scale: 100.0 }, false);
    schema.add_source("a", false);
    schema.add_source("b", false);
    let mut b = SnapshotBuilder::new(0);
    b.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(1.0));
    b.add(SourceId(1), ObjectId(0), AttrId(0), Value::number(2.0));
    b.build(Arc::new(schema))
}

/// A few-item snapshot with ragged candidate rows: a four-way contested item,
/// a single-provider item, and a unanimous two-provider item — fewer items
/// than most chunk counts in [`CHUNK_COUNTS`].
fn ragged_snapshot() -> Snapshot {
    let mut schema = DomainSchema::new("chunk-ragged");
    schema.add_attribute("x", AttrKind::Numeric { scale: 100.0 }, false);
    for name in ["a", "b", "c", "d"] {
        schema.add_source(name, false);
    }
    let mut b = SnapshotBuilder::new(0);
    let a = AttrId(0);
    // Item 0: four providers, three distinct values (ragged row).
    b.add(SourceId(0), ObjectId(0), a, Value::number(10.0));
    b.add(SourceId(1), ObjectId(0), a, Value::number(10.0));
    b.add(SourceId(2), ObjectId(0), a, Value::number(55.0));
    b.add(SourceId(3), ObjectId(0), a, Value::number(70.0));
    // Item 1: one provider, one candidate.
    b.add(SourceId(2), ObjectId(1), a, Value::number(12.0));
    // Item 2: two providers, unanimous.
    b.add(SourceId(0), ObjectId(2), a, Value::number(33.0));
    b.add(SourceId(3), ObjectId(2), a, Value::number(33.0));
    b.build(Arc::new(schema))
}

/// The option sets every fixture is exercised under: standard, per-attribute
/// trust, and oracle input trust.
fn option_sets(num_sources: usize) -> Vec<(FusionOptions, &'static str)> {
    let trust: Vec<f64> = (0..num_sources)
        .map(|s| 0.5 + 0.4 * ((s % 7) as f64) / 7.0)
        .collect();
    vec![
        (FusionOptions::standard(), "standard"),
        (
            FusionOptions::standard().with_per_attribute_trust(),
            "per-attr",
        ),
        (
            FusionOptions::standard().with_input_trust(trust),
            "input-trust",
        ),
    ]
}

fn assert_snapshot_chunk_invariant(snapshot: &Snapshot, label: &str) {
    let problem = FusionProblem::from_snapshot(snapshot);
    for threads in THREAD_COUNTS {
        set_threads(threads);
        for (opts, mode) in option_sets(problem.num_sources()) {
            assert_all_methods_chunk_invariant(
                &problem,
                &opts,
                &format!("{label}/{mode}/threads={threads}"),
            );
        }
    }
}

#[test]
fn one_item_world_is_chunk_invariant() {
    assert_snapshot_chunk_invariant(&one_item_snapshot(), "one-item");
}

#[test]
fn ragged_few_item_world_is_chunk_invariant() {
    assert_snapshot_chunk_invariant(&ragged_snapshot(), "ragged");
}

#[test]
fn kitchen_sink_reference_day_is_chunk_invariant() {
    let world = by_name("kitchen_sink").expect("kitchen_sink scenario").build();
    let day = world.domain.collection.reference_day();
    let problem = FusionProblem::from_snapshot(&day.snapshot);
    for threads in THREAD_COUNTS {
        set_threads(threads);
        assert_all_methods_chunk_invariant(
            &problem,
            &FusionOptions::standard(),
            &format!("kitchen-sink/threads={threads}"),
        );
    }
}

/// The evaluation layer forwards the chunk count to both the without-trust
/// and the with-trust (oracle copying included) runs; rows must not change.
#[test]
fn evaluation_rows_are_chunk_invariant() {
    let domain = generate(&stock_config(2012).scaled(0.02, 0.1));
    let day = domain.collection.reference_day();
    let report = copydetect::known_copying(day.snapshot.schema());
    let context = EvaluationContext::new(&day.snapshot, &day.gold).with_known_copying(&report);
    for threads in THREAD_COUNTS {
        set_threads(threads);
        for (category, method) in all_methods() {
            let sequential = evaluate_method(&context, category, method.as_ref());
            for chunks in [3usize, 8] {
                let chunked =
                    evaluate_method_with_chunks(&context, category, method.as_ref(), chunks);
                assert!(
                    same_results(
                        std::slice::from_ref(&sequential),
                        std::slice::from_ref(&chunked)
                    ),
                    "{} row diverged at {chunks} chunks, {threads} threads",
                    sequential.method
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random seeded worlds: every method, every chunk count, every pool
    /// size produces the sequential bits.
    #[test]
    fn random_worlds_are_chunk_invariant(
        seed in 0u64..10_000,
        scale in 0.004f64..0.012,
    ) {
        let domain = generate(&stock_config(seed).scaled(scale, 0.05));
        let day = domain.collection.reference_day();
        let problem = FusionProblem::from_snapshot(&day.snapshot);
        prop_assert!(problem.num_items() >= 1);
        for threads in THREAD_COUNTS {
            set_threads(threads);
            for (opts, mode) in option_sets(problem.num_sources()) {
                assert_all_methods_chunk_invariant(
                    &problem,
                    &opts,
                    &format!("seed={seed}/{mode}/threads={threads}"),
                );
            }
        }
    }
}
