//! Golden-metrics regression suite over the named adversarial scenarios.
//!
//! Each test builds its scenario world at the golden seed
//! (`datagen::scenario::GOLDEN_SEED`), renders the per-method
//! precision / copy-detection table, and asserts it matches the checked-in
//! file under `tests/golden/` **bit for bit** — any change to the generator,
//! a fusion method, or the copy detector that moves a single metric fails
//! loudly here. The tables are regenerated with:
//!
//! ```text
//! cargo run --release --bin exp_scenarios -- --bless
//! ```
//!
//! after which the diff of `tests/golden/*.txt` documents the behaviour
//! change in review. The rendering uses fixed `{:.6}` formatting and the
//! fusion kernels are bit-identical across backends, so the same tables hold
//! in debug, release, and `FUSION_FORCE_SCALAR=1` runs (CI exercises all
//! three).

use datagen::scenario::by_name;
use evaluation::{evaluate_scenario_day, render_golden_table};

/// Build `name`'s golden world, render its table, and compare against the
/// checked-in golden text, printing a line-level diff on mismatch.
fn assert_matches_golden(name: &str, golden: &str) {
    let scenario = by_name(name).unwrap_or_else(|| panic!("unknown scenario {name:?}"));
    let world = scenario.build();
    let day = world.domain.collection.reference_day();
    let outcome = evaluate_scenario_day(name, &day.snapshot, &day.truth, &world.true_edges);
    let table = render_golden_table(&outcome);
    if table == golden {
        return;
    }
    let mut diff = String::new();
    for (line_no, (got, want)) in table.lines().zip(golden.lines()).enumerate() {
        if got != want {
            diff.push_str(&format!(
                "  line {}:\n    golden: {want}\n    fresh:  {got}\n",
                line_no + 1
            ));
        }
    }
    if table.lines().count() != golden.lines().count() {
        diff.push_str(&format!(
            "  line counts differ: golden {}, fresh {}\n",
            golden.lines().count(),
            table.lines().count()
        ));
    }
    panic!(
        "scenario {name:?} diverged from tests/golden/{name}.txt:\n{diff}\
         If the change is intentional, regenerate the tables with:\n  \
         cargo run --release --bin exp_scenarios -- --bless"
    );
}

#[test]
fn golden_copier_ring() {
    assert_matches_golden("copier_ring", include_str!("golden/copier_ring.txt"));
}

#[test]
fn golden_zipf_coverage() {
    assert_matches_golden("zipf_coverage", include_str!("golden/zipf_coverage.txt"));
}

#[test]
fn golden_quality_flip() {
    assert_matches_golden("quality_flip", include_str!("golden/quality_flip.txt"));
}

#[test]
fn golden_format_drift() {
    assert_matches_golden("format_drift", include_str!("golden/format_drift.txt"));
}

#[test]
fn golden_scale10_capacity() {
    assert_matches_golden("scale10_capacity", include_str!("golden/scale10_capacity.txt"));
}

#[test]
fn golden_kitchen_sink() {
    assert_matches_golden("kitchen_sink", include_str!("golden/kitchen_sink.txt"));
}

/// The checked-in files cover exactly the scenario registry — a new named
/// scenario without a golden table (or a stale file for a removed one) fails
/// here rather than going silently untested.
#[test]
fn golden_files_cover_the_registry() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
        .expect("tests/golden exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    on_disk.sort();
    let mut expected: Vec<String> = datagen::scenario::SCENARIO_NAMES
        .iter()
        .map(|n| n.to_string())
        .collect();
    expected.sort();
    assert_eq!(
        on_disk, expected,
        "tests/golden/*.txt must match datagen::scenario::SCENARIO_NAMES"
    );
}
