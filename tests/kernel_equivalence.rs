//! Kernel-level bit-identity suite: the dispatched kernels of
//! `fusion::kernels` (AVX2+FMA where the CPU supports it, scalar otherwise)
//! must produce results **bit-identical** to the portable scalar fallbacks in
//! `fusion::kernels::scalar` on every input shape — including the
//! lane-remainder edge cases a 4-wide SIMD kernel can get wrong: the empty
//! plane, items with 1/3/4/5/7 candidates, single-item problems, and
//! all-zero trust. CI runs this suite in debug and `--release`, with and
//! without `FUSION_FORCE_SCALAR=1` (where it degenerates to scalar-vs-scalar
//! but still pins the env override and the dispatched path).

use deepweb_truth::fusion::kernels::{self, scalar, TrustView};
use proptest::prelude::*;

/// A synthetic vote-plane CSR in exactly the layout `FusionProblem` /
/// `VotePlane` expose to the kernels, derived deterministically from sampled
/// candidate counts and a pool of random floats.
struct PlaneFixture {
    /// Item → candidate offsets (`num_items + 1`).
    offsets: Vec<u32>,
    /// One vote slot per global candidate.
    values: Vec<f64>,
    /// Candidate → provider offsets (`num_candidates + 1`).
    provider_offsets: Vec<u32>,
    /// Flat dense source indices.
    providers: Vec<u32>,
    /// Attribute index per global candidate (owning item's attribute).
    cand_attrs: Vec<u32>,
    /// Attribute index per item.
    item_attrs: Vec<u32>,
    num_sources: usize,
    num_attrs: usize,
}

impl PlaneFixture {
    fn build(cand_counts: &[usize], pool: &[f64], num_sources: usize, num_attrs: usize) -> Self {
        let at = |i: usize| pool[i % pool.len()];
        let mut offsets = vec![0u32];
        let mut values = Vec::new();
        let mut provider_offsets = vec![0u32];
        let mut providers = Vec::new();
        let mut cand_attrs = Vec::new();
        let mut item_attrs = Vec::new();
        for (i, &n) in cand_counts.iter().enumerate() {
            let attr = (i % num_attrs) as u32;
            item_attrs.push(attr);
            for k in 0..n {
                let c = values.len();
                values.push(at(c) * 10.0 - 2.0);
                cand_attrs.push(attr);
                // Provider-list length varies 0..=4 so CSR ranges of every
                // lane in a 4-candidate chunk differ.
                let np = (c * 7 + k + i) % 5;
                for p in 0..np {
                    providers.push(((c * 3 + p * 11 + i) % num_sources) as u32);
                }
                provider_offsets.push(providers.len() as u32);
            }
            offsets.push(values.len() as u32);
        }
        Self {
            offsets,
            values,
            provider_offsets,
            providers,
            cand_attrs,
            item_attrs,
            num_sources,
            num_attrs,
        }
    }

    /// Per-source claim lists `(item, cand)` covering every provider slot.
    fn claims(&self) -> Vec<Vec<(u32, u32)>> {
        let mut claims = vec![Vec::new(); self.num_sources];
        for i in 0..self.offsets.len() - 1 {
            for c in self.offsets[i] as usize..self.offsets[i + 1] as usize {
                let local = (c - self.offsets[i] as usize) as u32;
                let span = self.provider_offsets[c] as usize..self.provider_offsets[c + 1] as usize;
                for &p in &self.providers[span] {
                    claims[p as usize].push((i as u32, local));
                }
            }
        }
        claims
    }
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Dispatched accumulate == scalar accumulate, both trust views, bit for bit.
fn assert_accumulate_matches(fx: &PlaneFixture, trust_pool: &[f64]) {
    let overall: Vec<f64> = (0..fx.num_sources)
        .map(|s| trust_pool[s % trust_pool.len()])
        .collect();
    let per_attr: Vec<f64> = (0..fx.num_sources * fx.num_attrs)
        .map(|k| trust_pool[(k * 13 + 5) % trust_pool.len()])
        .collect();
    for view in [
        TrustView::Overall(&overall),
        TrustView::PerAttr {
            values: &per_attr,
            num_attrs: fx.num_attrs,
            cand_attrs: &fx.cand_attrs,
        },
    ] {
        let mut dispatched = vec![f64::NAN; fx.values.len()];
        let mut reference = vec![f64::NAN; fx.values.len()];
        kernels::accumulate_weighted_votes(
            &mut dispatched,
            &fx.provider_offsets,
            &fx.providers,
            &view,
        );
        scalar::accumulate_weighted_votes(
            &mut reference,
            &fx.provider_offsets,
            &fx.providers,
            &view,
        );
        assert_eq!(bits(&dispatched), bits(&reference));
    }
}

/// Dispatched argmax == scalar argmax on the fixture's plane values.
fn assert_argmax_matches(fx: &PlaneFixture) {
    let mut dispatched = vec![usize::MAX; 3];
    let mut reference = vec![usize::MAX; 3];
    kernels::argmax_into(&fx.offsets, &fx.values, &mut dispatched);
    scalar::argmax_into(&fx.offsets, &fx.values, &mut reference);
    assert_eq!(dispatched, reference);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Vote accumulation (overall and per-attribute trust) is bit-identical
    /// across random CSR shapes, including empty planes and empty items.
    #[test]
    fn accumulate_weighted_votes_matches_scalar(
        cand_counts in prop::collection::vec(0usize..9, 0..24),
        pool in prop::collection::vec(0.0f64..1.0, 1..64),
    ) {
        let fx = PlaneFixture::build(&cand_counts, &pool, 7, 3);
        assert_accumulate_matches(&fx, &pool);
    }

    /// Per-item argmax selection is bit-identical (same winning index under
    /// the `1e-12` tie rule, index 0 for empty items).
    #[test]
    fn argmax_matches_scalar(
        cand_counts in prop::collection::vec(0usize..9, 0..24),
        pool in prop::collection::vec(0.0f64..1.0, 1..64),
    ) {
        let fx = PlaneFixture::build(&cand_counts, &pool, 7, 3);
        assert_argmax_matches(&fx);
        // Duplicate-heavy values exercise the tie rule: quantize to a few
        // distinct levels so chunks contain exact repeats.
        let mut fx = fx;
        for v in fx.values.iter_mut() {
            *v = (*v * 4.0).round();
        }
        assert_argmax_matches(&fx);
    }

    /// `normalize_by_max` and `rescale_to_unit` are bit-identical, including
    /// on negative, all-zero, and sub-4-lane slices.
    #[test]
    fn elementwise_rescalers_match_scalar(xs in prop::collection::vec(-4.0f64..4.0, 0..40)) {
        let mut dispatched = xs.clone();
        let mut reference = xs.clone();
        kernels::normalize_by_max(&mut dispatched);
        scalar::normalize_by_max(&mut reference);
        assert_eq!(bits(&dispatched), bits(&reference));

        let mut dispatched = xs.clone();
        let mut reference = xs;
        kernels::rescale_to_unit(&mut dispatched);
        scalar::rescale_to_unit(&mut reference);
        assert_eq!(bits(&dispatched), bits(&reference));
    }

    /// The per-source claim-score sums (overall and S×A accumulators) are
    /// bit-identical in claim order.
    #[test]
    fn claim_score_sums_match_scalar(
        cand_counts in prop::collection::vec(1usize..9, 1..24),
        pool in prop::collection::vec(0.0f64..1.0, 1..64),
    ) {
        let fx = PlaneFixture::build(&cand_counts, &pool, 7, 3);
        for claims in fx.claims() {
            let a = kernels::sum_claim_scores(&claims, &fx.offsets, &fx.values);
            let b = scalar::sum_claim_scores(&claims, &fx.offsets, &fx.values);
            assert_eq!(a.to_bits(), b.to_bits());

            let mut sum_a = vec![0.25; fx.num_attrs];
            let mut cnt_a = vec![3usize; fx.num_attrs];
            let mut sum_b = sum_a.clone();
            let mut cnt_b = cnt_a.clone();
            let ta = kernels::sum_claim_scores_per_attr(
                &claims, &fx.offsets, &fx.values, &fx.item_attrs, &mut sum_a, &mut cnt_a,
            );
            let tb = scalar::sum_claim_scores_per_attr(
                &claims, &fx.offsets, &fx.values, &fx.item_attrs, &mut sum_b, &mut cnt_b,
            );
            assert_eq!(ta.to_bits(), tb.to_bits());
            assert_eq!(bits(&sum_a), bits(&sum_b));
            assert_eq!(cnt_a, cnt_b);
        }
    }

    /// The co-claim LLR accumulation is bit-identical, including the neutral
    /// shared-selected case and out-of-range items (selection 0).
    #[test]
    fn pair_llr_matches_scalar(
        entry_seeds in prop::collection::vec(0usize..64, 0..40),
        selection in prop::collection::vec(0usize..4, 1..12),
        llr_pool in prop::collection::vec(-2.0f64..0.0, 2..3),
    ) {
        // Entries deliberately include items beyond `selection.len()` and a
        // high rate of ca == cb collisions.
        let entries: Vec<(u32, u32, u32)> = entry_seeds
            .iter()
            .map(|&s| ((s % 16) as u32, (s % 4) as u32, ((s / 4) % 4) as u32))
            .collect();
        let a = kernels::accumulate_pair_llr(&entries, &selection, llr_pool[0], llr_pool[1]);
        let b = scalar::accumulate_pair_llr(&entries, &selection, llr_pool[0], llr_pool[1]);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// The exact lane-remainder shapes the issue calls out: empty plane, items
/// of 1/3/4/5/7 candidates, a single-item problem, and all-zero trust.
#[test]
fn lane_remainder_edge_cases() {
    let pool = [0.9, 0.1, 0.5, 0.3, 0.7, 0.2];
    for counts in [
        &[][..],
        &[1][..],
        &[3][..],
        &[4][..],
        &[5][..],
        &[7][..],
        &[1, 3, 4, 5, 7][..],
        &[0, 7, 0, 1][..],
    ] {
        let fx = PlaneFixture::build(counts, &pool, 5, 2);
        assert_accumulate_matches(&fx, &pool);
        assert_argmax_matches(&fx);
        // All-zero trust: every vote is an exact +0.0 sum on both paths.
        assert_accumulate_matches(&fx, &[0.0]);
    }
}

/// `FUSION_FORCE_SCALAR` pins the dispatched backend to the scalar path.
#[test]
fn env_override_is_respected() {
    let forced = std::env::var_os("FUSION_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0");
    if forced {
        assert_eq!(kernels::backend_name(), "scalar");
    } else {
        assert!(matches!(kernels::backend_name(), "avx2+fma" | "scalar"));
    }
}
