//! Integration suite for the online [`service::FusionService`] shell.
//!
//! Two contracts are pinned here, end to end:
//!
//! 1. **Out-of-order convergence.** A day's claims streamed through the
//!    service in shuffled chunks — with exact-replay duplicates and a
//!    retraction mixed in — seal to selections and trust **bit-identical**
//!    to a cold `FusionProblem::from_snapshot` + batch run of the same
//!    logical day, for all sixteen registry methods. Arrival order is
//!    invisible in the output.
//! 2. **Readers never block on an advance.** Reader threads hammering the
//!    published state while the ingest thread seals day after day always
//!    observe a complete, internally consistent state with monotonically
//!    non-decreasing day and version — under `RAYON_NUM_THREADS` 1 and 2
//!    (the rayon stand-in reads the variable per call, so an in-process
//!    `set_var` takes effect for the seals that follow).

use datagen::{generate, mutation_stream, stock_config};
use datamodel::{ItemId, Snapshot, SnapshotBuilder};
use fusion::{all_methods, FusionOptions, FusionProblem};
use service::{day_ops, diff_ops, shuffle, FusionService, Operation, ServiceConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Rebuild `snapshot` without the claim `(skip_source, skip_item)` — the
/// logical day the convergence test's retraction leaves behind. Tolerances
/// are recomputed from the surviving values, exactly as the service's first
/// seal recomputes them from its ledger.
fn snapshot_without(snapshot: &Snapshot, skip: (datamodel::SourceId, ItemId)) -> Snapshot {
    let mut builder = SnapshotBuilder::new(snapshot.day());
    for (item, obs) in snapshot.items() {
        for o in obs {
            if (o.source, *item) == skip {
                continue;
            }
            builder.add(o.source, item.object, item.attr, o.value.clone());
        }
    }
    builder.build(snapshot.schema_arc())
}

/// Shuffled-chunk ingest of one Stock day — duplicates and a retraction
/// included — must publish the cold batch bits for every registry method.
#[test]
fn shuffled_out_of_order_ingest_matches_cold_batch_for_all_methods() {
    let domain = generate(&stock_config(4012).scaled(0.006, 0.05));
    let day = &domain.collection.reference_day().snapshot;
    assert!(day.num_items() >= 4, "world too small to be interesting");

    let mut ops = day_ops(day, 0);
    let base_len = ops.len() as u64;

    // A retraction (fresher than the upsert it supersedes) withdraws one
    // claim from an item that keeps other claimants; the logical day is the
    // snapshot minus that observation.
    let (victim_item, victim_source) = day
        .items()
        .find(|(_, obs)| obs.len() >= 3)
        .map(|(item, obs)| (*item, obs[0].source))
        .expect("some item has three claimants");
    // Exact replays of a handful of operations: idempotency must drop them
    // whether they land before or after their originals. The victim claim is
    // excluded — its replay may be dropped as Stale instead of Duplicate
    // when the shuffle lands the retraction first.
    let is_victim = |op: &Operation| {
        matches!(
            &op.kind,
            service::OpKind::UpsertClaim { source, object, attr, .. }
                if *source == victim_source
                    && ItemId::new(*object, *attr) == victim_item
        )
    };
    let dupes: Vec<Operation> = ops
        .iter()
        .step_by(97)
        .filter(|op| !is_victim(op))
        .cloned()
        .collect();
    let num_dupes = dupes.len();

    ops.push(Operation::retract(
        base_len,
        victim_source,
        victim_item.object,
        victim_item.attr,
    ));
    let expected = snapshot_without(day, (victim_source, victim_item));
    ops.extend(dupes);

    shuffle(&mut ops, 0xA5A5);

    let mut svc = FusionService::new(day.schema_arc());
    let mut applied = 0;
    let mut duplicates = 0;
    let mut stale = 0;
    for chunk in ops.chunks(64) {
        let summary = svc.apply_all(chunk.to_vec());
        applied += summary.applied;
        duplicates += summary.duplicates;
        stale += summary.stale;
        assert_eq!(summary.rejected, 0, "no op in the stream is invalid");
    }
    assert_eq!(duplicates, num_dupes, "every replay must be dropped");
    // The victim's original upsert is Stale when the retraction beat it,
    // Applied (then superseded in the ledger) otherwise.
    assert!(stale <= 1, "only the victim upsert can be stale");
    assert_eq!(
        applied as u64 + stale as u64,
        base_len + 1,
        "originals + the retraction, minus nothing"
    );
    svc.apply(Operation::seal(u64::MAX, 0));

    let state = svc.reader().state();
    assert_eq!(state.day(), Some(0));
    assert_eq!(state.items().len(), expected.num_items());
    assert!(
        !state.items().contains(&victim_item) || expected.observations(victim_item).len() >= 2,
        "the retracted claim must be gone from the served day"
    );

    let cold_problem = FusionProblem::from_snapshot(&expected);
    let options = FusionOptions::standard();
    for (_, method) in all_methods() {
        let name = method.name();
        let cold = method.run(&cold_problem, &options);
        let served = state
            .selection(&name)
            .unwrap_or_else(|| panic!("{name}: no served selection"));
        let cold_sel: Vec<u32> = cold.selection.iter().map(|&s| s as u32).collect();
        assert_eq!(served, cold_sel.as_slice(), "{name}: selection diverged");
        let served_bits: Vec<u64> = state
            .trust_vector(&name)
            .expect("served trust")
            .iter()
            .map(|t| t.to_bits())
            .collect();
        let cold_bits: Vec<u64> = cold.trust.overall.iter().map(|t| t.to_bits()).collect();
        assert_eq!(served_bits, cold_bits, "{name}: trust bits diverged");
    }
}

/// Spin readers against the published slot while the ingest side seals a
/// stream of mutated days: every observed state is complete and internally
/// consistent, and day/version never move backwards.
fn readers_never_observe_torn_state(num_readers: usize) {
    let domain = generate(&stock_config(77).scaled(0.006, 0.05));
    let base = domain.collection.reference_day().snapshot.clone();
    let stream = mutation_stream(&base, 4, 0.1, 7);

    let mut svc = FusionService::with_config(
        base.schema_arc(),
        ServiceConfig {
            methods: vec!["Vote".to_string(), "Cosine".to_string()],
            ..ServiceConfig::default()
        },
    );
    let reader = svc.reader();
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..num_readers {
            let reader = reader.clone();
            let stop = Arc::clone(&stop);
            handles.push(scope.spawn(move || {
                let mut last_day = None;
                let mut last_version = 0u64;
                let mut observed_published = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let state = reader.state();
                    assert!(state.version() >= last_version, "version went backwards");
                    assert!(state.day() >= last_day, "day went backwards");
                    last_version = state.version();
                    last_day = state.day();
                    if let Some(day) = state.day() {
                        observed_published += 1;
                        // A published state is complete: both methods
                        // materialized over the full item set, and answers
                        // are self-consistent with the state's own day.
                        for method in ["Vote", "Cosine"] {
                            let sel = state
                                .selection(method)
                                .expect("published state has both methods");
                            assert_eq!(sel.len(), state.items().len());
                            assert_eq!(
                                state.trust_vector(method).expect("trust").len(),
                                state.sources().len()
                            );
                        }
                        let item = state.items()[0];
                        let answer = state.answer("Vote", item).expect("first item answers");
                        assert_eq!(answer.day, day);
                        assert!(!answer.sources.is_empty());
                        assert!((0.0..=1.0).contains(&answer.confidence));
                    }
                }
                observed_published
            }));
        }

        // Ingest side: stream each day's diff into the ledger and seal it
        // while the readers hammer the slot.
        let mut seq = 0u64;
        let mut prev = SnapshotBuilder::new(0).build(base.schema_arc());
        for (day_index, day) in stream.days.iter().enumerate() {
            let ops = diff_ops(&prev, day, seq);
            seq += ops.len() as u64;
            svc.apply_all(ops);
            let outcome = svc.apply(Operation::seal(seq, day_index as u32));
            seq += 1;
            assert!(
                matches!(outcome, service::ApplyOutcome::Sealed(_)),
                "day {day_index} must seal"
            );
            prev = day.clone();
        }
        stop.store(true, Ordering::Relaxed);
        for handle in handles {
            let observed = handle.join().expect("reader panicked");
            assert!(observed > 0, "reader never saw a published state");
        }
    });

    assert_eq!(reader.day(), Some(stream.days.len() as u32 - 1));
    let stats = reader.stats();
    assert_eq!(stats.seals, stream.days.len());
    assert_eq!(stats.delta.advances, stream.days.len());
}

#[test]
fn concurrent_readers_stay_consistent_across_thread_counts() {
    // The rayon stand-in sizes its pool from the environment per call, so
    // both legs run in-process; CI additionally runs the whole suite under
    // exported RAYON_NUM_THREADS legs.
    for threads in [1usize, 2] {
        std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
        readers_never_observe_torn_state(3);
    }
}
