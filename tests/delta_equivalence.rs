//! Delta-vs-cold equivalence harness for the warm delta fusion engine.
//!
//! The contract of `fusion::delta` in exact mode is that warm state is
//! invisible in the output: a `DeltaEngine` advanced through any day-over-day
//! mutation sequence produces, for every method and every day, results
//! **bit-identical** to a cold `FusionProblem::from_snapshot` + full run on
//! that day's snapshot — same selection, same trust bits, same rounds. This
//! suite pins that across:
//!
//! * all sixteen registry methods;
//! * random seeded mutation sequences (proptest): value edits, item
//!   removal and re-addition, sources leaving and rejoining the active set,
//!   and no-op days — under pinned tolerances (the splice fast path) and
//!   recomputed tolerances (the attr-dirty / full-refresh path);
//! * the standard, per-attribute-trust, and oracle-input-trust option modes;
//! * composition with intra-day chunking (`with_intra_day_chunks`);
//! * `RAYON_NUM_THREADS` ∈ {1, 2} and the `FUSION_FORCE_SCALAR` kernel leg
//!   (via the CI matrix — the assertions themselves are thread-agnostic);
//! * the planted `datagen::mutation_stream` worlds, where the observed
//!   `SnapshotDelta` must equal the planted dirty set exactly.
//!
//! Bounded mode is *not* bit-identical by design; fixed-seed pins below hold
//! its selection agreement and trust drift to empirically chosen tolerances.

use datagen::{generate, mutation_stream, stock_config};
use datamodel::{Snapshot, SnapshotBuilder, SnapshotDelta, SourceId, Value};
use fusion::{all_methods, DeltaEngine, DeltaPolicy, FusionOptions, FusionProblem};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Assert one warm result is bit-identical to its cold counterpart.
fn assert_bit_identical(
    warm: &fusion::FusionResult,
    cold: &fusion::FusionResult,
    label: &str,
) {
    assert_eq!(
        warm.selection, cold.selection,
        "{label}: selection diverged"
    );
    assert_eq!(warm.rounds, cold.rounds, "{label}: rounds diverged");
    let wb: Vec<u64> = warm.trust.overall.iter().map(|t| t.to_bits()).collect();
    let cb: Vec<u64> = cold.trust.overall.iter().map(|t| t.to_bits()).collect();
    assert_eq!(wb, cb, "{label}: trust bits diverged");
    assert_eq!(
        warm.trust.per_attr, cold.trust.per_attr,
        "{label}: per-attribute trust diverged"
    );
    assert_eq!(warm.selected, cold.selected, "{label}: selected diverged");
}

/// The option sets every sequence is exercised under (mirrors the
/// chunk-equivalence suite).
fn option_sets(num_sources: usize) -> Vec<(FusionOptions, &'static str)> {
    let trust: Vec<f64> = (0..num_sources)
        .map(|s| 0.5 + 0.4 * ((s % 7) as f64) / 7.0)
        .collect();
    vec![
        (FusionOptions::standard(), "standard"),
        (
            FusionOptions::standard().with_per_attribute_trust(),
            "per-attr",
        ),
        (
            FusionOptions::standard().with_input_trust(trust),
            "input-trust",
        ),
    ]
}

/// One random day-over-day mutation of `prev`: value edits, item removal,
/// re-addition of previously removed items, one source leaving or rejoining
/// the active set — or a verbatim no-op day. `pinned` keeps the base
/// tolerance context (the splice fast path); otherwise tolerances are
/// recomputed from the mutated data (attr-dirty / full-refresh path).
#[allow(clippy::too_many_arguments)]
fn mutate_day(
    base: &Snapshot,
    prev: &Snapshot,
    rng: &mut StdRng,
    removed_items: &mut Vec<datamodel::ItemId>,
    dropped_sources: &mut Vec<SourceId>,
    pinned: bool,
) -> Snapshot {
    let mut builder = SnapshotBuilder::new(prev.day() + 1);

    if rng.gen_bool(0.15) {
        // No-op day: identical observations.
        for (item, obs) in prev.items() {
            for o in obs {
                builder.add(o.source, item.object, item.attr, o.value.clone());
            }
        }
    } else {
        let items: Vec<datamodel::ItemId> = prev.item_ids().collect();
        let num_edits = rng.gen_range(0..=(items.len() / 8).max(1));
        let num_removals = if items.len() > 8 {
            rng.gen_range(0..=items.len() / 10)
        } else {
            0
        };
        let mut edit_set = BTreeSet::new();
        for _ in 0..num_edits {
            edit_set.insert(items[rng.gen_range(0..items.len())]);
        }
        let mut removal_set = BTreeSet::new();
        for _ in 0..num_removals {
            removal_set.insert(items[rng.gen_range(0..items.len())]);
        }
        removal_set.retain(|i| !edit_set.contains(i));

        // One source leaves the active set, or a previously dropped one
        // rejoins (its base-day claims restored on the surviving items).
        let mut leaving: Option<SourceId> = None;
        let mut rejoining: Option<SourceId> = None;
        if !dropped_sources.is_empty() && rng.gen_bool(0.5) {
            rejoining = Some(dropped_sources.remove(rng.gen_range(0..dropped_sources.len())));
        } else if rng.gen_bool(0.4) {
            let active: Vec<SourceId> = prev.active_sources().into_iter().collect();
            if active.len() > 3 {
                let s = active[rng.gen_range(0..active.len())];
                leaving = Some(s);
                dropped_sources.push(s);
            }
        }

        for (item, obs) in prev.items() {
            if removal_set.contains(item) {
                removed_items.push(*item);
                continue;
            }
            let edit_slot = if edit_set.contains(item) {
                obs.iter()
                    .position(|o| matches!(o.value, Value::Number { .. }))
            } else {
                None
            };
            for (i, o) in obs.iter().enumerate() {
                if Some(o.source) == leaving {
                    continue;
                }
                let value = if edit_slot == Some(i) {
                    let v = o.value.as_f64().expect("edit slot is numeric");
                    Value::number(v * 1.05 + 3.0)
                } else {
                    o.value.clone()
                };
                builder.add(o.source, item.object, item.attr, value);
            }
            if let Some(s) = rejoining {
                if let Some(value) = base.value_of(s, *item) {
                    builder.add(s, item.object, item.attr, value.clone());
                }
            }
        }

        // Re-add up to two previously removed items with their base rows.
        let num_readds = removed_items.len().min(2);
        for _ in 0..num_readds {
            if rng.gen_bool(0.6) {
                let item = removed_items.remove(rng.gen_range(0..removed_items.len()));
                for o in base.observations(item) {
                    if Some(o.source) == leaving || dropped_sources.contains(&o.source) {
                        continue;
                    }
                    builder.add(o.source, item.object, item.attr, o.value.clone());
                }
            }
        }
    }

    if pinned {
        builder.build_with_tolerance(base.schema_arc(), base.tolerance().clone())
    } else {
        builder.build(base.schema_arc())
    }
}

/// Drive one engine per option mode through the day sequence, comparing every
/// (day, method) against a cold from-scratch run.
fn assert_sequence_exact(days: &[Snapshot], label: &str) {
    let methods = all_methods();
    let cold_problems: Vec<FusionProblem> =
        days.iter().map(FusionProblem::from_snapshot).collect();
    let num_sources = cold_problems
        .iter()
        .map(FusionProblem::num_sources)
        .max()
        .unwrap_or(0);
    for (options, mode) in option_sets(num_sources) {
        let mut engine = DeltaEngine::with_policy(DeltaPolicy::exact());
        for (di, (day, cold_problem)) in days.iter().zip(&cold_problems).enumerate() {
            engine.advance(day);
            for (_, method) in &methods {
                let (warm, _) = engine.run(method.as_ref(), &options);
                let cold = method.run(cold_problem, &options);
                assert_bit_identical(
                    &warm,
                    &cold,
                    &format!("{label}/{mode}/day={di}/{}", method.name()),
                );
            }
        }
    }
}

/// Unit pin of [`SnapshotDelta`] itself: one day mixing every mutation axis
/// (a value edit, an item removal, a source leaving the active set) yields
/// exactly the expected dirty sets and dirty fraction.
#[test]
fn snapshot_delta_pins_every_mutation_axis_at_once() {
    let domain = generate(&stock_config(31).scaled(0.006, 0.05));
    let base = &domain.collection.reference_day().snapshot;
    let items: Vec<datamodel::ItemId> = base.item_ids().collect();
    assert!(items.len() >= 3, "world too small for the pin");
    let edited = items[0];
    let removed = items[items.len() / 2];
    let leaving = *base
        .active_sources()
        .iter()
        .max_by_key(|s| {
            base.items()
                .filter(|(_, obs)| obs.iter().any(|o| o.source == **s))
                .count()
        })
        .expect("world has sources");

    let mut builder = SnapshotBuilder::new(base.day() + 1);
    for (item, obs) in base.items() {
        if *item == removed {
            continue;
        }
        for (i, o) in obs.iter().enumerate() {
            if o.source == leaving {
                continue;
            }
            let value = if *item == edited && i == 0 {
                match o.value.as_f64() {
                    Some(v) => Value::number(v * 2.0 + 7.0),
                    None => o.value.clone(),
                }
            } else {
                o.value.clone()
            };
            builder.add(o.source, item.object, item.attr, value);
        }
    }
    let next = builder.build_with_tolerance(base.schema_arc(), base.tolerance().clone());

    let delta = SnapshotDelta::between(base, &next);
    assert!(!delta.is_empty());
    assert!(delta.dirty_items().contains(&edited), "edit must dirty its item");
    assert!(
        delta.removed_items().contains(&removed) || delta.dirty_items().contains(&removed),
        "removed item must be tracked (fully removed, or dirtied if the \
         leaving source was its only claimant elsewhere)"
    );
    assert!(
        delta.removed_sources().contains(&leaving),
        "source with zero remaining claims must leave the active set"
    );
    assert!(delta.dirty_attrs().is_empty(), "pinned tolerance: no attr dirt");
    // Every item the leaving source claimed (minus the removed one) is dirty.
    for (item, obs) in base.items() {
        if *item == removed {
            continue;
        }
        if obs.iter().any(|o| o.source == leaving) {
            assert!(
                delta.is_dirty_item(*item),
                "item claimed by the leaving source must be dirty"
            );
        }
    }
    let expected_fraction = (delta.dirty_items().len() + delta.removed_items().len()) as f64
        / (delta.num_next_items() + delta.removed_items().len()) as f64;
    assert!((delta.dirty_fraction() - expected_fraction).abs() < 1e-12);
}

/// Fixed-seed smoke form of the proptest below, so a plain `cargo test`
/// without the proptest cases still covers both tolerance paths.
#[test]
fn fixed_mutation_sequence_is_exact_for_all_methods() {
    let domain = generate(&stock_config(2012).scaled(0.006, 0.05));
    let base = domain.collection.reference_day().snapshot.clone();
    for pinned in [true, false] {
        let mut rng = StdRng::seed_from_u64(99);
        let mut removed = Vec::new();
        let mut dropped = Vec::new();
        let mut days = vec![base.clone()];
        for _ in 0..3 {
            let next = mutate_day(
                &base,
                days.last().unwrap(),
                &mut rng,
                &mut removed,
                &mut dropped,
                pinned,
            );
            days.push(next);
        }
        assert_sequence_exact(&days, if pinned { "fixed/pinned" } else { "fixed/recomputed" });
    }
}

/// Exact mode composes with intra-day chunking: the chunked warm run equals
/// the *sequential* cold run bit for bit (chunking is bit-invisible, delta
/// preparation is bit-invisible, so their composition is too).
#[test]
fn exact_mode_composes_with_intra_day_chunking() {
    let domain = generate(&stock_config(7).scaled(0.008, 0.05));
    let base = &domain.collection.reference_day().snapshot;
    let stream = mutation_stream(base, 2, 0.1, 7);
    let options = FusionOptions::standard().with_intra_day_chunks(3);
    let sequential = FusionOptions::standard();
    let mut engine = DeltaEngine::with_policy(DeltaPolicy::exact());
    for (di, day) in stream.days.iter().enumerate() {
        engine.advance(day);
        let cold_problem = FusionProblem::from_snapshot(day);
        for name in ["Vote", "Cosine", "AccuCopy"] {
            let method = fusion::method_by_name(name).expect("registered");
            let (warm, _) = engine.run(method.as_ref(), &options);
            let cold = method.run(&cold_problem, &sequential);
            assert_bit_identical(&warm, &cold, &format!("chunked/day={di}/{name}"));
        }
    }
}

/// No-op days hit the per-method result cache: the cached result is returned
/// without fusing and still equals the cold run.
#[test]
fn no_op_days_are_served_from_the_cache() {
    let domain = generate(&stock_config(21).scaled(0.006, 0.05));
    let day = &domain.collection.reference_day().snapshot;
    let options = FusionOptions::standard();
    let method = fusion::method_by_name("Cosine").expect("registered");
    let mut engine = DeltaEngine::new();
    engine.advance(day);
    let (first, first_report) = engine.run(method.as_ref(), &options);
    assert!(!first_report.cache_hit);
    let replay = day.clone();
    let report = engine.advance(&replay);
    assert!(report.identical, "verbatim day must diff empty");
    let (second, second_report) = engine.run(method.as_ref(), &options);
    assert!(second_report.cache_hit, "no-op day must hit the cache");
    assert_bit_identical(&second, &first, "cache replay");
    let cold = method.run(&FusionProblem::from_snapshot(&replay), &options);
    assert_bit_identical(&second, &cold, "cache vs cold");
}

/// The planted mutation-stream worlds: the observed delta equals the planted
/// dirty set, and exact mode stays bit-identical along the stream.
#[test]
fn mutation_stream_days_observe_their_planted_delta_and_stay_exact() {
    let domain = generate(&stock_config(3).scaled(0.006, 0.05));
    let base = &domain.collection.reference_day().snapshot;
    let stream = mutation_stream(base, 3, 0.08, 13);
    for (i, planted) in stream.dirty_sets.iter().enumerate() {
        let delta = SnapshotDelta::between(&stream.days[i], &stream.days[i + 1]);
        assert_eq!(delta.dirty_items(), planted, "transition {i}");
        assert!(delta.removed_items().is_empty());
        assert!(delta.dirty_attrs().is_empty());
    }
    assert_sequence_exact(&stream.days, "mutation-stream");
}

/// Bounded mode is not bit-identical; these fixed-seed pins hold its drift.
/// At a 2% planted dirty fraction the frontier-restricted run must agree with
/// the cold selection on ≥ 97% of items and keep every source's overall
/// trust within 0.15 of the cold value (both bounds chosen empirically with
/// headroom; the suite fails if bounded mode degrades past them).
#[test]
fn bounded_mode_stays_within_pinned_tolerances() {
    let domain = generate(&stock_config(17).scaled(0.01, 0.05));
    let base = &domain.collection.reference_day().snapshot;
    let stream = mutation_stream(base, 3, 0.02, 17);
    let options = FusionOptions::standard();
    let mut engine = DeltaEngine::with_policy(DeltaPolicy::bounded());
    for (di, day) in stream.days.iter().enumerate() {
        engine.advance(day);
        let cold_problem = FusionProblem::from_snapshot(day);
        for name in ["Vote", "Cosine"] {
            let method = fusion::method_by_name(name).expect("registered");
            let (warm, _) = engine.run(method.as_ref(), &options);
            let cold = method.run(&cold_problem, &options);
            assert_eq!(warm.selection.len(), cold.selection.len());
            let agree = warm
                .selection
                .iter()
                .zip(&cold.selection)
                .filter(|(w, c)| w == c)
                .count();
            let agreement = agree as f64 / cold.selection.len().max(1) as f64;
            assert!(
                agreement >= 0.97,
                "bounded/day={di}/{name}: selection agreement {agreement:.4} below pin"
            );
            let max_drift = warm
                .trust
                .overall
                .iter()
                .zip(&cold.trust.overall)
                .map(|(w, c)| (w - c).abs())
                .fold(0.0f64, f64::max);
            assert!(
                max_drift <= 0.15,
                "bounded/day={di}/{name}: trust drift {max_drift:.4} above pin"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random mutation sequences: every method, every option mode, both
    /// tolerance paths produce the cold bits on every day.
    #[test]
    fn random_mutation_sequences_are_exact(
        seed in 0u64..10_000,
        scale in 0.004f64..0.010,
        pinned_bit in 0u8..2,
    ) {
        let pinned = pinned_bit == 1;
        let domain = generate(&stock_config(seed).scaled(scale, 0.05));
        let base = domain.collection.reference_day().snapshot.clone();
        prop_assert!(base.num_items() >= 1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xd1f7);
        let mut removed = Vec::new();
        let mut dropped = Vec::new();
        let mut days = vec![base.clone()];
        for _ in 0..3 {
            let next = mutate_day(
                &base,
                days.last().unwrap(),
                &mut rng,
                &mut removed,
                &mut dropped,
                pinned,
            );
            days.push(next);
        }
        assert_sequence_exact(
            &days,
            &format!("seed={seed}/pinned={pinned}"),
        );
    }
}
