//! Cross-runner equivalence harness for the sharded batch evaluation.
//!
//! The batch runner's whole contract is that warm-arena evaluation changes
//! nothing but the wall clock: `BatchRunner` rows must be **bit-identical**
//! to `ParallelRunner` rows and to `evaluate_days_sequential` rows on the
//! same day selection — across seeds, scales, shard counts, and both the
//! detected and the oracle (known-copying) paths. CI runs this suite in
//! debug and `--release`, because the float-identical claims must hold
//! under optimization too.

use datagen::{flight_config, generate, stock_config, GeneratedDomain};
use evaluation::{
    evaluate_days_sequential, same_results, BatchRunner, DayEvaluation, ParallelRunner,
};
use proptest::prelude::*;

/// Assert the full three-runner equivalence on every day of `domain`, for
/// one copy path and one shard count.
fn assert_three_way(domain: &GeneratedDomain, use_known_copying: bool, shards: usize) {
    let indices: Vec<usize> = (0..domain.collection.num_days()).collect();
    let sequential = evaluate_days_sequential(&domain.collection, &indices, use_known_copying);

    let mut parallel = ParallelRunner::new();
    let mut batch = BatchRunner::new().with_num_shards(shards);
    if use_known_copying {
        parallel = parallel.with_known_copying();
        batch = batch.with_known_copying();
    }
    let parallel = parallel.evaluate_days(&domain.collection, &indices);
    let batch = batch.evaluate_days(&domain.collection, &indices);

    assert_eq!(sequential.len(), parallel.days.len());
    assert_eq!(sequential.len(), batch.days.len());
    let check = |label: &str, got: &[DayEvaluation]| {
        for (s, g) in sequential.iter().zip(got) {
            assert_eq!(s.day_index, g.day_index, "{label}: day order changed");
            assert_eq!(s.day, g.day, "{label}: day stamps diverged");
            assert_eq!(g.rows.len(), 16, "{label}: row count");
            assert!(
                same_results(&s.rows, &g.rows),
                "{label}: rows diverged from sequential on day {} \
                 (known_copying={use_known_copying}, shards={shards})",
                s.day
            );
        }
    };
    check("parallel", &parallel.days);
    check("batch", &batch.days);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Random small collections (seed, scale, day count, shard count):
    /// batch == parallel == sequential bit-identically on both copy paths.
    #[test]
    fn random_collections_agree_across_runners(
        seed in 0u64..10_000,
        scale in 0.004f64..0.012,
        days in 0.05f64..0.25,
        shards in 1usize..6,
    ) {
        let domain = generate(&stock_config(seed).scaled(scale, days));
        prop_assert!(domain.collection.num_days() >= 1);
        assert_three_way(&domain, false, shards);
        assert_three_way(&domain, true, shards);
    }
}

/// The acceptance fixtures: seeded Stock and Flight domains, both copy
/// paths, through every runner. These are the exact domains the golden
/// Table-7 suite (`tests/equivalence.rs`) pins, so a divergence here
/// triangulates immediately.
#[test]
fn seeded_stock_fixture_agrees_across_runners() {
    let stock = generate(&stock_config(2012).scaled(0.02, 0.1));
    assert_three_way(&stock, false, 2);
    assert_three_way(&stock, true, 2);
}

#[test]
fn seeded_flight_fixture_agrees_across_runners() {
    let flight = generate(&flight_config(2012).scaled(0.1, 0.06));
    assert_three_way(&flight, false, 3);
    assert_three_way(&flight, true, 3);
}

/// Shard-boundary regressions: a single day, more shards than days, and a
/// day count that does not divide evenly — every plan must reproduce the
/// sequential rows in order.
#[test]
fn shard_boundaries_never_reorder_or_drop_rows() {
    let domain = generate(&stock_config(77).scaled(0.008, 0.25));
    let num_days = domain.collection.num_days();
    assert!(num_days >= 2, "fixture needs a multi-day collection");

    // One day only.
    let one_day = vec![domain.collection.reference_day_index()];
    let sequential = evaluate_days_sequential(&domain.collection, &one_day, false);
    for shards in [1usize, 4] {
        let batch = BatchRunner::new()
            .with_num_shards(shards)
            .evaluate_days(&domain.collection, &one_day);
        assert_eq!(batch.days.len(), 1);
        assert_eq!(batch.num_shards, 1, "a single day can only form one shard");
        assert!(same_results(&sequential[0].rows, &batch.days[0].rows));
    }

    // Days < shards, and days % shards != 0.
    let all: Vec<usize> = (0..num_days).collect();
    let sequential = evaluate_days_sequential(&domain.collection, &all, false);
    for shards in [num_days + 5, num_days.saturating_sub(1).max(1), 3] {
        let batch = BatchRunner::new()
            .with_num_shards(shards)
            .evaluate_days(&domain.collection, &all);
        assert_eq!(batch.days.len(), num_days);
        assert!(batch.num_shards <= num_days.min(shards.max(1)));
        for (s, b) in sequential.iter().zip(&batch.days) {
            assert_eq!(s.day_index, b.day_index);
            assert!(same_results(&s.rows, &b.rows), "shards={shards}");
        }
    }
}

/// A subset selection (not starting at day 0, out-of-order-free but sparse)
/// keeps request order, exactly like the parallel runner.
#[test]
fn sparse_day_selections_keep_request_order() {
    let domain = generate(&stock_config(78).scaled(0.008, 0.3));
    let num_days = domain.collection.num_days();
    assert!(num_days >= 3);
    let selection = vec![num_days - 1, 0, num_days / 2];
    let sequential = evaluate_days_sequential(&domain.collection, &selection, false);
    let batch = BatchRunner::new()
        .with_num_shards(2)
        .evaluate_days(&domain.collection, &selection);
    assert_eq!(batch.days.len(), selection.len());
    for (s, b) in sequential.iter().zip(&batch.days) {
        assert_eq!(s.day_index, b.day_index);
        assert_eq!(s.day, b.day);
        assert!(same_results(&s.rows, &b.rows));
    }
}
